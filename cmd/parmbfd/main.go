// Command parmbfd is the FRT distance-oracle server: it builds an Embedder
// ensemble for a graph exactly once at startup (hop set → simulated graph H
// → K concurrently sampled trees), preprocesses it into an
// frt.OracleIndex, and then serves single and batched distance queries over
// HTTP. Queries cost O(K·log depth) array lookups each and never touch the
// graph again — the serving-side counterpart of the construction pipeline.
//
// Server:
//
//	parmbfd -addr :8337 -gen random -n 4096 -m 16384 -trees 16
//	parmbfd -addr :8337 -in graph.txt -trees 8
//
// Endpoints:
//
//	GET  /healthz                       liveness
//	GET  /stats                         graph/ensemble shape + query counters
//	GET  /dist?u=4&v=9[&stat=median]    one estimate (default stat=min)
//	POST /batch                         {"pairs":[[u,v],…],"stat":"min"}
//	                                    → {"dists":[…]}
//
// Load-generating client (measures server-side batched throughput):
//
//	parmbfd -client -target http://localhost:8337 -requests 200 -batch 256 -concurrency 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// maxBatchPairs caps one /batch request: large enough to amortise, small
// enough that a hostile request cannot make the server allocate without
// bound.
const maxBatchPairs = 1 << 16

func main() {
	var (
		addr  = flag.String("addr", ":8337", "listen address (server mode)")
		in    = flag.String("in", "", "read graph from file (edge-list format)")
		gen   = flag.String("gen", "random", "generator: random | grid | path | cycle | geometric | lollipop | powerlaw")
		n     = flag.Int("n", 4096, "generated graph size")
		m     = flag.Int("m", 0, "generated edge count (random generator; default 4n)")
		seed  = flag.Uint64("seed", 1, "random seed")
		trees = flag.Int("trees", 16, "ensemble size K")

		client      = flag.Bool("client", false, "run as load-generating client instead of server")
		target      = flag.String("target", "http://localhost:8337", "server URL (client mode)")
		requests    = flag.Int("requests", 100, "batch requests to send (client mode)")
		batch       = flag.Int("batch", 256, "pairs per batch request (client mode)")
		concurrency = flag.Int("concurrency", 4, "concurrent client connections (client mode)")
	)
	flag.Parse()

	if *client {
		if err := runClient(*target, *requests, *batch, *concurrency, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	rng := par.NewRNG(*seed)
	g, err := loadGraph(*in, *gen, *n, *m, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	start := time.Now()
	s, _, err := newServer(g, *trees, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("oracle: K=%d trees, max depth %d, built in %v\n",
		s.idx.NumTrees(), s.idx.MaxDepth(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("serving on %s\n", *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.mux(),
		// Serving-hardening timeouts: a slow-loris client (or one that
		// never finishes a /batch body) must not pin a connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// server holds the immutable oracle and the query counters. The index is
// read-only after construction, so handlers share it without locking; the
// response buffers come from a pool.
type server struct {
	g       *graph.Graph
	idx     *frt.OracleIndex
	started time.Time

	queries atomic.Int64 // pairs answered
	batches atomic.Int64 // /batch requests served

	bufs sync.Pool // *[]float64 response buffers
}

// newServer builds the shared pipeline once and indexes the ensemble (also
// returned, for callers that want walk-path access to the trees).
func newServer(g *graph.Graph, trees int, rng *par.RNG) (*server, *frt.Ensemble, error) {
	e, err := frt.NewEmbedder(g, frt.Options{RNG: rng})
	if err != nil {
		return nil, nil, err
	}
	ens, err := e.SampleEnsemble(trees)
	if err != nil {
		return nil, nil, err
	}
	idx, err := ens.Index()
	if err != nil {
		return nil, nil, err
	}
	s := &server{g: g, idx: idx, started: time.Now()}
	s.bufs.New = func() any { b := make([]float64, 0, 1024); return &b }
	return s, ens, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /dist", s.handleDist)
	mux.HandleFunc("POST /batch", s.handleBatch)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":    s.g.N(),
		"edges":    s.g.M(),
		"trees":    s.idx.NumTrees(),
		"maxDepth": s.idx.MaxDepth(),
		"queries":  s.queries.Load(),
		"batches":  s.batches.Load(),
		"uptimeMs": time.Since(s.started).Milliseconds(),
	})
}

func (s *server) handleDist(w http.ResponseWriter, r *http.Request) {
	u, err1 := parseNode(r.URL.Query().Get("u"), s.g.N())
	v, err2 := parseNode(r.URL.Query().Get("v"), s.g.N())
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "u and v must be node ids in [0, n)")
		return
	}
	var d float64
	switch stat := r.URL.Query().Get("stat"); stat {
	case "", "min":
		d = s.idx.Min(u, v)
	case "median":
		d = s.idx.Median(u, v)
	default:
		writeError(w, http.StatusBadRequest, "stat must be min or median")
		return
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "dist": d})
}

// batchRequest is the /batch payload: pairs of node ids, and the estimator
// to apply (min by default).
type batchRequest struct {
	Pairs [][2]int64 `json:"pairs"`
	Stat  string     `json:"stat"`
}

type batchResponse struct {
	Dists []float64 `json:"dists"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<24))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, "empty pairs")
		return
	}
	if len(req.Pairs) > maxBatchPairs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d pairs exceeds cap %d", len(req.Pairs), maxBatchPairs))
		return
	}
	n := int64(s.g.N())
	pairs := make([]frt.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("pair %d out of range", i))
			return
		}
		pairs[i] = frt.Pair{U: graph.Node(p[0]), V: graph.Node(p[1])}
	}
	bufp := s.bufs.Get().(*[]float64)
	defer s.bufs.Put(bufp)
	var out []float64
	switch req.Stat {
	case "", "min":
		out = s.idx.MinBatch(pairs, *bufp)
	case "median":
		out = s.idx.MedianBatch(pairs, *bufp)
	default:
		writeError(w, http.StatusBadRequest, "stat must be min or median")
		return
	}
	*bufp = out[:0]
	s.queries.Add(int64(len(pairs)))
	s.batches.Add(1)
	writeJSON(w, http.StatusOK, batchResponse{Dists: out})
}

func parseNode(s string, n int) (graph.Node, error) {
	// strconv.Atoi rejects trailing garbage ("3.9", "4x") outright, where a
	// scanf-style parse would silently answer a different query.
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= n {
		return 0, fmt.Errorf("node %d out of range", v)
	}
	return graph.Node(v), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// runClient floods the server's /batch endpoint with random-pair batches
// from `concurrency` connections and reports throughput and latency
// quantiles — the smoke-load harness for the serving scenario.
func runClient(target string, requests, batch, concurrency int, seed uint64) error {
	if requests < 1 || batch < 1 || concurrency < 1 {
		return fmt.Errorf("-requests, -batch, and -concurrency must all be ≥ 1 (got %d, %d, %d)",
			requests, batch, concurrency)
	}
	// One idle connection per worker, so the measured quantiles are server
	// batch latency rather than TCP handshakes (DefaultTransport keeps only
	// 2 idle conns per host), and a hung server fails the run instead of
	// blocking it forever.
	hc := &http.Client{
		Timeout: time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}
	stats, err := fetchStats(hc, target)
	if err != nil {
		return fmt.Errorf("fetching %s/stats: %w", target, err)
	}
	n := int(stats.Nodes)
	if n < 2 {
		return fmt.Errorf("server graph too small: n=%d", n)
	}
	fmt.Printf("target %s: n=%d trees=%d\n", target, n, stats.Trees)

	// Pre-draw every request body so the measured loop is pure I/O + server.
	rng := par.NewRNG(seed)
	bodies := make([][]byte, requests)
	for i := range bodies {
		req := batchRequest{Pairs: make([][2]int64, batch), Stat: "min"}
		for j := range req.Pairs {
			req.Pairs[j] = [2]int64{int64(rng.Intn(n)), int64(rng.Intn(n))}
		}
		b, err := json.Marshal(req)
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	latencies := make([]time.Duration, requests)
	errs := make([]error, requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				t0 := time.Now()
				errs[i] = postBatch(hc, target, bodies[i], batch)
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pairs := requests * batch
	fmt.Printf("sent %d batches × %d pairs in %v (%d failed)\n", requests, batch, elapsed.Round(time.Millisecond), failed)
	fmt.Printf("throughput: %.0f pairs/s, %.1f batches/s\n",
		float64(pairs)/elapsed.Seconds(), float64(requests)/elapsed.Seconds())
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		latencies[requests/2], latencies[requests*9/10], latencies[requests*99/100], latencies[requests-1])
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed: first error: %w", failed, requests, firstError(errs))
	}
	return nil
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type statsResponse struct {
	Nodes int64 `json:"nodes"`
	Trees int64 `json:"trees"`
}

func fetchStats(hc *http.Client, target string) (*statsResponse, error) {
	resp, err := hc.Get(target + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	var s statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

func postBatch(hc *http.Client, target string, body []byte, wantDists int) error {
	resp, err := hc.Post(target+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /batch: %s", resp.Status)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return err
	}
	if len(br.Dists) != wantDists {
		return fmt.Errorf("got %d dists, want %d", len(br.Dists), wantDists)
	}
	return nil
}

func loadGraph(in, gen string, n, m int, rng *par.RNG) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Read(f)
	}
	switch gen {
	case "random":
		if m <= 0 {
			m = 4 * n
		}
		return graph.RandomConnected(n, m, 10, rng), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.GridGraph(side, side, 10, rng), nil
	case "path":
		return graph.PathGraph(n, 1), nil
	case "cycle":
		return graph.CycleGraph(n, 1), nil
	case "geometric":
		return graph.RandomGeometric(n, 0.15, rng), nil
	case "lollipop":
		return graph.Lollipop(n/4, 3*n/4), nil
	case "powerlaw":
		return graph.BarabasiAlbert(n, 3, 10, rng), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
