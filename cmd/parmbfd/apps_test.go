package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parmbf/internal/apps/buyatbulk"
	"parmbf/internal/apps/kmedian"
	"parmbf/internal/apps/routing"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// testCables is a three-tier economies-of-scale catalogue shared by the
// /buyatbulk tests.
var testCables = []wireCable{{Capacity: 1, Cost: 1}, {Capacity: 4, Cost: 2.5}, {Capacity: 16, Cost: 6}}

func TestKMedianEndpoint(t *testing.T) {
	_, ts, g, _ := testServer(t)
	req := kmedianRequest{K: 4, Seed: 7}
	var first kmedianResponse
	if code := postJSONValue(t, ts.URL+"/kmedian", req, &first); code != http.StatusOK {
		t.Fatalf("kmedian: code %d", code)
	}
	if len(first.Centers) == 0 || len(first.Centers) > req.K {
		t.Fatalf("kmedian returned %d centers, want 1..%d", len(first.Centers), req.K)
	}
	if first.Candidates == 0 {
		t.Fatal("kmedian reported zero sampled candidates")
	}
	// The reported cost must be the exact evaluation of the reported centers.
	centers := make([]graph.Node, len(first.Centers))
	for i, c := range first.Centers {
		if c < 0 || c >= int64(g.N()) {
			t.Fatalf("center %d out of range", c)
		}
		centers[i] = graph.Node(c)
	}
	if want := kmedian.Cost(g, centers); first.Cost != want {
		t.Fatalf("reported cost %v, exact cost of reported centers %v", first.Cost, want)
	}
	// Same seed, same answer: the endpoint is reproducible.
	var second kmedianResponse
	postJSONValue(t, ts.URL+"/kmedian", req, &second)
	if second.Cost != first.Cost || len(second.Centers) != len(first.Centers) {
		t.Fatalf("same seed produced a different answer: %+v vs %+v", second, first)
	}
}

func TestBuyAtBulkEndpointMatchesDirectSolve(t *testing.T) {
	_, ts, g, ens := testServer(t)
	req := buyAtBulkRequest{
		Demands: []wireDemand{{S: 0, T: 31, Amount: 2}, {S: 5, T: 17, Amount: 1.5}, {S: 40, T: 3, Amount: 6}},
		Cables:  testCables,
	}
	var got buyAtBulkResponse
	if code := postJSONValue(t, ts.URL+"/buyatbulk", req, &got); code != http.StatusOK {
		t.Fatalf("buyatbulk: code %d", code)
	}
	if len(got.Purchases) == 0 || got.Cost <= 0 {
		t.Fatalf("degenerate solution: %d purchases, cost %v", len(got.Purchases), got.Cost)
	}
	// The endpoint must answer exactly what a direct solve over the server's
	// ensemble answers — it is a transport, not a different algorithm.
	demands := make([]buyatbulk.Demand, len(req.Demands))
	for i, d := range req.Demands {
		demands[i] = buyatbulk.Demand{S: graph.Node(d.S), T: graph.Node(d.T), Amount: d.Amount}
	}
	cables := make([]buyatbulk.CableType, len(req.Cables))
	for i, c := range req.Cables {
		cables[i] = buyatbulk.CableType{Capacity: c.Capacity, Cost: c.Cost}
	}
	want, err := buyatbulk.Solve(g, demands, cables, buyatbulk.Options{Ensemble: ens})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || len(got.Purchases) != len(want.Purchases) {
		t.Fatalf("endpoint cost %v (%d purchases), direct solve %v (%d purchases)",
			got.Cost, len(got.Purchases), want.Cost, len(want.Purchases))
	}
}

func TestRouteEndpointPathsAreWalkable(t *testing.T) {
	_, ts, g, _ := testServer(t)
	wire, pairs := randomWirePairs(21, g.N(), 24)
	var got routeResponse
	if code := postJSONValue(t, ts.URL+"/route", routeRequest{Pairs: wire}, &got); code != http.StatusOK {
		t.Fatalf("route: code %d", code)
	}
	if len(got.Routes) != len(wire) {
		t.Fatalf("got %d routes, want %d", len(got.Routes), len(wire))
	}
	for i, wr := range got.Routes {
		path := make([]graph.Node, len(wr.Path))
		for j, v := range wr.Path {
			path[j] = graph.Node(v)
		}
		r := &routing.RouteResult{Path: path, Length: wr.Length, Tree: wr.Tree, TreeDist: wr.TreeDist}
		if err := routing.Validate(g, pairs[i].U, pairs[i].V, r); err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
	}
}

// TestScenarioStructuredErrors pins the error schema of all three scenario
// endpoints: stable machine-readable codes with the documented statuses.
func TestScenarioStructuredErrors(t *testing.T) {
	_, ts, _, _ := testServer(t)
	manyPairs, _ := json.Marshal(routeRequest{Pairs: make([][2]int64, maxRoutePairs+1)})
	manyCables := buyAtBulkRequest{Demands: []wireDemand{{S: 0, T: 1, Amount: 1}},
		Cables: make([]wireCable, maxScenarioCables+1)}
	manyCablesBody, _ := json.Marshal(manyCables)
	cases := []struct {
		name, path, body, code string
		status                 int
	}{
		{"kmedian not json", "/kmedian", "{", errBadJSON, http.StatusBadRequest},
		{"kmedian k=0", "/kmedian", `{"k":0}`, errBadScenario, http.StatusBadRequest},
		{"kmedian k>n", "/kmedian", `{"k":99999}`, errBadScenario, http.StatusBadRequest},
		{"buyatbulk demand range", "/buyatbulk",
			`{"demands":[{"s":0,"t":99999,"amount":1}],"cables":[{"capacity":1,"cost":1}]}`,
			errPairOutOfRange, http.StatusBadRequest},
		{"buyatbulk no cables", "/buyatbulk",
			`{"demands":[{"s":0,"t":1,"amount":1}],"cables":[]}`,
			errBadScenario, http.StatusBadRequest},
		{"buyatbulk cable cap", "/buyatbulk", string(manyCablesBody),
			errBatchTooLarge, http.StatusRequestEntityTooLarge},
		{"route empty", "/route", `{"pairs":[]}`, errEmptyPairs, http.StatusBadRequest},
		{"route range", "/route", `{"pairs":[[0,99999]]}`, errPairOutOfRange, http.StatusBadRequest},
		{"route cap", "/route", string(manyPairs), errBatchTooLarge, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		status, e := postForError(t, ts.URL+c.path, c.body)
		if status != c.status || e.Code != c.code {
			t.Fatalf("%s: status %d code %q, want %d %q", c.name, status, e.Code, c.status, c.code)
		}
	}
}

// TestScenarioBodyTooLarge: the scenario endpoints share the transport body
// cap with /batch and /update.
func TestScenarioBodyTooLarge(t *testing.T) {
	_, ts, _, _ := testServer(t)
	huge := bytes.Repeat([]byte{' '}, maxBodyBytes+2)
	copy(huge, `{"pairs":[[0,1]`)
	for _, path := range []string{"/kmedian", "/buyatbulk", "/route"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		err = json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge || er.Error.Code != errBodyTooLarge {
			t.Fatalf("%s oversized body: code %d, error %+v", path, resp.StatusCode, er.Error)
		}
	}
}

// TestScenarioUnavailableOnSnapshotServer: a server holding only the trees
// (as -load builds) must answer 409 scenario_unavailable, not crash, and
// advertise scenarios:false in /stats.
func TestScenarioUnavailableOnSnapshotServer(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.RandomConnected(48, 140, 8, rng)
	ens, meta, err := buildEnsemble(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(nil, ens, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()
	for path, body := range map[string]string{
		"/kmedian":   `{"k":2,"seed":1}`,
		"/buyatbulk": `{"demands":[{"s":0,"t":1,"amount":1}],"cables":[{"capacity":1,"cost":1}]}`,
		"/route":     `{"pairs":[[0,1]]}`,
	} {
		status, e := postForError(t, ts.URL+path, body)
		if status != http.StatusConflict || e.Code != errScenarioUnavailable {
			t.Fatalf("%s on snapshot server: status %d code %q, want 409 %q",
				path, status, e.Code, errScenarioUnavailable)
		}
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["scenarios"] != false {
		t.Fatalf("stats scenarios = %v, want false", stats["scenarios"])
	}
}

// TestRouterKMedianFanout: the router shards the per-tree loop across the
// fleet and keeps the cheapest answer. Because every shard's winner includes
// the global estimate-argmin, the merged cost can never exceed the
// single-process solve of the same instance.
func TestRouterKMedianFanout(t *testing.T) {
	rt, _, ref := testFleet(t, 2, 3*time.Second, time.Hour)
	rts := httptest.NewServer(rt.mux())
	defer rts.Close()
	refTS := httptest.NewServer(ref.mux())
	defer refTS.Close()

	req := kmedianRequest{K: 4, Seed: 13}
	var fleet, single kmedianResponse
	if code := postJSONValue(t, rts.URL+"/kmedian", req, &fleet); code != http.StatusOK {
		t.Fatalf("router kmedian: code %d", code)
	}
	if code := postJSONValue(t, refTS.URL+"/kmedian", req, &single); code != http.StatusOK {
		t.Fatalf("reference kmedian: code %d", code)
	}
	if len(fleet.Centers) == 0 || fleet.Cost <= 0 {
		t.Fatalf("degenerate fleet answer: %+v", fleet)
	}
	if fleet.Cost > single.Cost {
		t.Fatalf("fleet cost %v exceeds single-process cost %v", fleet.Cost, single.Cost)
	}
	// Tree slicing is the router's own concern; a client pre-slicing would
	// silently compose with it.
	status, e := postForError(t, rts.URL+"/kmedian", `{"k":2,"trees":1}`)
	if status != http.StatusBadRequest || e.Code != errBadScenario {
		t.Fatalf("router kmedian with trees set: status %d code %q", status, e.Code)
	}
}

// TestRouterProxiesScenarios: /buyatbulk and /route pass through the router
// whole (they are not tree-separable) and come back as valid worker answers.
func TestRouterProxiesScenarios(t *testing.T) {
	rt, _, ref := testFleet(t, 2, 3*time.Second, time.Hour)
	rts := httptest.NewServer(rt.mux())
	defer rts.Close()
	refTS := httptest.NewServer(ref.mux())
	defer refTS.Close()

	bab := buyAtBulkRequest{
		Demands: []wireDemand{{S: 2, T: 44, Amount: 3}, {S: 9, T: 30, Amount: 1}},
		Cables:  testCables,
	}
	var viaRouter, direct buyAtBulkResponse
	if code := postJSONValue(t, rts.URL+"/buyatbulk", bab, &viaRouter); code != http.StatusOK {
		t.Fatalf("router buyatbulk: code %d", code)
	}
	if code := postJSONValue(t, refTS.URL+"/buyatbulk", bab, &direct); code != http.StatusOK {
		t.Fatalf("direct buyatbulk: code %d", code)
	}
	if viaRouter.Cost != direct.Cost {
		t.Fatalf("router cost %v, direct cost %v — proxy must not change the answer", viaRouter.Cost, direct.Cost)
	}

	var routes routeResponse
	if code := postJSONValue(t, rts.URL+"/route", routeRequest{Pairs: [][2]int64{{1, 40}, {7, 7}}}, &routes); code != http.StatusOK {
		t.Fatalf("router route: code %d", code)
	}
	if len(routes.Routes) != 2 || len(routes.Routes[0].Path) == 0 {
		t.Fatalf("router route answer malformed: %+v", routes)
	}
	// Structured worker rejections are relayed verbatim, not converted to 502.
	status, e := postForError(t, rts.URL+"/route", `{"pairs":[]}`)
	if status != http.StatusBadRequest || e.Code != errEmptyPairs {
		t.Fatalf("router relayed route rejection: status %d code %q", status, e.Code)
	}
}

// TestRouterScenarioFailover: killing a worker mid-fleet must not take the
// scenario endpoints down — /kmedian re-asks the dead primary's shard on the
// survivor, and the /route proxy fails over to the next replica.
func TestRouterScenarioFailover(t *testing.T) {
	rt, tss, _ := testFleet(t, 2, 2*time.Second, time.Hour)
	rts := httptest.NewServer(rt.mux())
	defer rts.Close()
	tss[0].Close()

	var kr kmedianResponse
	if code := postJSONValue(t, rts.URL+"/kmedian", kmedianRequest{K: 3, Seed: 5}, &kr); code != http.StatusOK {
		t.Fatalf("kmedian with a dead worker: code %d", code)
	}
	if len(kr.Centers) == 0 {
		t.Fatalf("degenerate answer after failover: %+v", kr)
	}
	var routes routeResponse
	for i := 0; i < 2; i++ { // round-robin start: hit both the dead and live primary
		if code := postJSONValue(t, rts.URL+"/route", routeRequest{Pairs: [][2]int64{{0, 30}}}, &routes); code != http.StatusOK {
			t.Fatalf("route with a dead worker (attempt %d): code %d", i, code)
		}
	}
	if rt.failovers.Load() == 0 {
		t.Fatal("no failover was recorded despite a dead worker")
	}
}

// TestRouterScenarioUpstreamFailures pins the router-side rejection and
// failure branches of the scenario endpoints: malformed bodies and bad k are
// rejected by the router itself, a fleet with no live worker yields 502
// upstream_unavailable, and a fleet of snapshot-only workers (no graph) has
// its structured 409 relayed verbatim rather than converted to a 502.
func TestRouterScenarioUpstreamFailures(t *testing.T) {
	rt, tss, _ := testFleet(t, 2, 500*time.Millisecond, time.Hour)
	rts := httptest.NewServer(rt.mux())
	defer rts.Close()

	if status, e := postForError(t, rts.URL+"/kmedian", "{"); status != http.StatusBadRequest || e.Code != errBadJSON {
		t.Fatalf("router kmedian bad json: status %d code %q", status, e.Code)
	}
	if status, e := postForError(t, rts.URL+"/kmedian", `{"k":0}`); status != http.StatusBadRequest || e.Code != errBadScenario {
		t.Fatalf("router kmedian k=0: status %d code %q", status, e.Code)
	}

	for _, ts := range tss {
		ts.Close()
	}
	for _, c := range []struct{ path, body string }{
		{"/kmedian", `{"k":2,"seed":1}`},
		{"/route", `{"pairs":[[0,1]]}`},
		{"/buyatbulk", `{"demands":[{"s":0,"t":1,"amount":1}],"cables":[{"capacity":1,"cost":1}]}`},
	} {
		status, e := postForError(t, rts.URL+c.path, c.body)
		if status != http.StatusBadGateway || e.Code != errUpstreamUnavailable {
			t.Fatalf("%s on dead fleet: status %d code %q, want 502 %q", c.path, status, e.Code, errUpstreamUnavailable)
		}
	}
}

// TestRouterForwardsScenarioUnavailable: snapshot-only workers reject the
// scenarios with 409; the router must relay that answer for the fan-out
// endpoint too (every shard fails identically).
func TestRouterForwardsScenarioUnavailable(t *testing.T) {
	rng := par.NewRNG(11)
	g := graph.RandomConnected(48, 140, 8, rng)
	ens, meta, err := buildEnsemble(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < 2; i++ {
		ws, err := newServer(nil, ens, meta, nil)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(ws.mux())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	rt, err := newRouter(urls, 8, 2*time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.mux())
	defer rts.Close()
	for _, c := range []struct{ path, body string }{
		{"/kmedian", `{"k":2,"seed":1}`},
		{"/route", `{"pairs":[[0,1]]}`},
	} {
		status, e := postForError(t, rts.URL+c.path, c.body)
		if status != http.StatusConflict || e.Code != errScenarioUnavailable {
			t.Fatalf("%s via snapshot fleet: status %d code %q, want 409 %q", c.path, status, e.Code, errScenarioUnavailable)
		}
	}
}

// TestRouteTablesInvalidatedByUpdate: /update bumps the serving version, so
// the next /route must rebuild the next-hop tables against the edited graph
// and still return walkable paths.
func TestRouteTablesInvalidatedByUpdate(t *testing.T) {
	s, ts, dyn := testDynamicServer(t)
	pair := [][2]int64{{0, 25}}
	var before routeResponse
	if code := postJSONValue(t, ts.URL+"/route", routeRequest{Pairs: pair}, &before); code != http.StatusOK {
		t.Fatalf("route before update: code %d", code)
	}
	builtAt := s.routeTablesAt

	e := dyn.Graph().Edges()[3]
	var ur updateResponse
	if code := postJSONValue(t, ts.URL+"/update", updateRequest{Edits: []updateEdit{
		{Op: "reweight", U: int64(e.U), V: int64(e.V), Weight: e.Weight * 4},
	}}, &ur); code != http.StatusOK {
		t.Fatalf("update: code %d", code)
	}

	var after routeResponse
	if code := postJSONValue(t, ts.URL+"/route", routeRequest{Pairs: pair}, &after); code != http.StatusOK {
		t.Fatalf("route after update: code %d", code)
	}
	if s.routeTablesAt == builtAt {
		t.Fatal("route tables were not rebuilt after /update")
	}
	path := make([]graph.Node, len(after.Routes[0].Path))
	for j, v := range after.Routes[0].Path {
		path[j] = graph.Node(v)
	}
	r := &routing.RouteResult{Path: path, Length: after.Routes[0].Length,
		Tree: after.Routes[0].Tree, TreeDist: after.Routes[0].TreeDist}
	if err := routing.Validate(dyn.Graph(), graph.Node(pair[0][0]), graph.Node(pair[0][1]), r); err != nil {
		t.Fatalf("route after update not walkable on the edited graph: %v", err)
	}
}

// TestClientScenarioModes drives the -client workload builder end to end
// against a live server for every mode.
func TestClientScenarioModes(t *testing.T) {
	_, ts, _, _ := testServer(t)
	for _, mode := range []string{"kmedian", "buyatbulk", "route"} {
		if err := runClient(ts.URL, mode, 3, 8, 2, 9, ""); err != nil {
			t.Fatalf("client mode %s: %v", mode, err)
		}
	}
	if err := runClient(ts.URL, "nonsense", 1, 1, 1, 1, ""); err == nil {
		t.Fatal("unknown -mode must fail")
	}
}
