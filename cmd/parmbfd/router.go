package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parmbf/internal/frt"
	"parmbf/internal/par"
)

// workerRef is one upstream replica. healthy is advisory routing state, not
// correctness state: an unhealthy worker is merely tried last, and any
// successful response marks it healthy again.
type workerRef struct {
	url      string
	healthy  atomic.Bool
	served   atomic.Int64 // shard requests answered
	failures atomic.Int64 // attempts that errored
}

// router shards the ensemble's K trees across a fleet of workers that each
// hold the full snapshot. Every /batch is decomposed into per-shard
// "pertree" subqueries, fanned out under a shared in-flight limiter, retried
// on surviving replicas when a worker dies or hangs, and merged with exactly
// the fold OracleIndex applies — so the fleet's answers are bitwise those of
// one big server. Because every worker can serve every shard, failover needs
// no data movement: a shard is just re-asked elsewhere.
type router struct {
	hc      *http.Client
	workers []*workerRef
	n, k    int
	shards  [][2]int // shards[i] is worker i's primary tree range [lo, hi)

	attemptTimeout time.Duration
	limiter        *par.Limiter
	started        time.Time

	queries   atomic.Int64
	batches   atomic.Int64
	failovers atomic.Int64 // shard attempts redirected off their primary

	bufs sync.Pool // *[]float64 merge buffers

	cancelHealth context.CancelFunc
	healthDone   chan struct{}
}

// newRouter probes every worker's /stats (with a short retry window so a
// fleet started by one script needn't sequence itself), checks they agree on
// the snapshot shape, and starts the background health loop.
func newRouter(urls []string, inflight int, attemptTimeout, healthEvery time.Duration) (*router, error) {
	if attemptTimeout <= 0 {
		attemptTimeout = 5 * time.Second
	}
	rt := &router{
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * len(urls),
			MaxIdleConnsPerHost: 8,
		}},
		attemptTimeout: attemptTimeout,
		limiter:        par.NewLimiter(inflight),
		started:        time.Now(),
	}
	for _, u := range urls {
		w := &workerRef{url: u}
		st, err := rt.probeStats(w)
		if err != nil {
			return nil, fmt.Errorf("worker %s unreachable: %w", u, err)
		}
		if rt.n == 0 {
			rt.n, rt.k = int(st.Nodes), int(st.Trees)
		} else if int(st.Nodes) != rt.n || int(st.Trees) != rt.k {
			return nil, fmt.Errorf("worker %s serves n=%d K=%d, fleet serves n=%d K=%d — mixed snapshots",
				u, st.Nodes, st.Trees, rt.n, rt.k)
		}
		w.healthy.Store(true)
		rt.workers = append(rt.workers, w)
	}
	if rt.n < 1 || rt.k < 1 {
		return nil, fmt.Errorf("fleet serves an empty ensemble (n=%d, K=%d)", rt.n, rt.k)
	}
	rt.shards = shardTrees(rt.k, len(rt.workers))
	rt.bufs.New = func() any { b := make([]float64, 0, 1024); return &b }

	hctx, cancel := context.WithCancel(context.Background())
	rt.cancelHealth = cancel
	rt.healthDone = make(chan struct{})
	go rt.healthLoop(hctx, healthEvery)
	return rt, nil
}

// probeStats fetches one worker's /stats, retrying briefly — at startup the
// fleet may still be binding its listeners.
func (rt *router) probeStats(w *workerRef) (*statsResponse, error) {
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), rt.attemptTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/stats", nil)
		if err != nil {
			cancel()
			return nil, err
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		var st statsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		return &st, nil
	}
	return nil, lastErr
}

// shardTrees splits K trees into w contiguous ranges, spreading the
// remainder over the first shards so sizes differ by at most one. With more
// workers than trees the surplus workers get empty primary shards and act as
// pure failover spares.
func shardTrees(k, w int) [][2]int {
	shards := make([][2]int, w)
	base, extra := k/w, k%w
	cur := 0
	for i := range shards {
		size := base
		if i < extra {
			size++
		}
		shards[i] = [2]int{cur, cur + size}
		cur += size
	}
	return shards
}

func (rt *router) Close() {
	rt.cancelHealth()
	<-rt.healthDone
	rt.hc.CloseIdleConnections()
}

func (rt *router) healthLoop(ctx context.Context, every time.Duration) {
	defer close(rt.healthDone)
	if every <= 0 {
		every = 2 * time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			for _, w := range rt.workers {
				hctx, cancel := context.WithTimeout(ctx, rt.attemptTimeout)
				req, err := http.NewRequestWithContext(hctx, http.MethodGet, w.url+"/healthz", nil)
				if err == nil {
					var resp *http.Response
					resp, err = rt.hc.Do(req)
					if err == nil {
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							err = fmt.Errorf("healthz: %s", resp.Status)
						}
					}
				}
				cancel()
				w.healthy.Store(err == nil)
			}
		}
	}
}

func (rt *router) healthyCount() int {
	c := 0
	for _, w := range rt.workers {
		if w.healthy.Load() {
			c++
		}
	}
	return c
}

func (rt *router) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /dist", rt.handleDist)
	mux.HandleFunc("POST /batch", rt.handleBatch)
	mux.HandleFunc("POST /update", rt.handleUpdate)
	mux.HandleFunc("POST /kmedian", rt.handleKMedian)
	mux.HandleFunc("POST /buyatbulk", rt.handleBuyAtBulk)
	mux.HandleFunc("POST /route", rt.handleRoute)
	return mux
}

// handleUpdate forwards an edit batch to every worker replica — each worker
// holds the full ensemble, so all of them must apply every update. The
// forwards run concurrently; the response reports each worker's resulting
// version. Any worker failure yields 502 with the per-worker outcomes so the
// operator can see which replicas diverged (a replica that missed an update
// must be restarted before it serves again — the router's health probes
// don't track versions).
func (rt *router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	// Updates run a repair and a reindex upstream — give them far more room
	// than one query attempt.
	timeout := 6 * rt.attemptTimeout
	if timeout < 30*time.Second {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	type workerUpdate struct {
		URL     string `json:"url"`
		Version int64  `json:"version,omitempty"`
		Error   string `json:"error,omitempty"`
	}
	results := make([]workerUpdate, len(rt.workers))
	var wg sync.WaitGroup
	failed := 0
	var mu sync.Mutex
	for i, wk := range rt.workers {
		wg.Add(1)
		go func(i int, wk *workerRef) {
			defer wg.Done()
			ver, err := rt.postUpdate(ctx, wk, body)
			results[i] = workerUpdate{URL: wk.url, Version: ver}
			if err != nil {
				results[i].Error = err.Error()
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}(i, wk)
	}
	wg.Wait()
	if failed > 0 {
		writeError(w, http.StatusBadGateway, errUpstreamUnavailable,
			fmt.Sprintf("%d of %d workers failed to apply the update", failed, len(rt.workers)),
			map[string]any{"workers": results})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": results})
}

func (rt *router) postUpdate(ctx context.Context, w *workerRef, body []byte) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/update", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error.Code != "" {
			return 0, fmt.Errorf("POST /update: %s: %s (%s)", resp.Status, er.Error.Message, er.Error.Code)
		}
		return 0, fmt.Errorf("POST /update: %s", resp.Status)
	}
	var ur updateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		return 0, err
	}
	return ur.Version, nil
}

// handleHealthz reports fleet health: ok with every replica up, degraded
// (still 200 — the router is serving) with some down, 503 with none.
func (rt *router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type workerHealth struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	}
	ws := make([]workerHealth, len(rt.workers))
	for i, wk := range rt.workers {
		ws[i] = workerHealth{URL: wk.url, Healthy: wk.healthy.Load()}
	}
	healthy := rt.healthyCount()
	status, code := "ok", http.StatusOK
	switch {
	case healthy == 0:
		status, code = "down", http.StatusServiceUnavailable
	case healthy < len(rt.workers):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{"status": status, "workers": ws})
}

func (rt *router) handleStats(w http.ResponseWriter, _ *http.Request) {
	type workerStats struct {
		URL      string `json:"url"`
		Healthy  bool   `json:"healthy"`
		Served   int64  `json:"served"`
		Failures int64  `json:"failures"`
	}
	ws := make([]workerStats, len(rt.workers))
	for i, wk := range rt.workers {
		ws[i] = workerStats{URL: wk.url, Healthy: wk.healthy.Load(),
			Served: wk.served.Load(), Failures: wk.failures.Load()}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":           "router",
		"nodes":          rt.n,
		"trees":          rt.k,
		"workers":        ws,
		"healthyWorkers": rt.healthyCount(),
		"shards":         rt.shards,
		"queries":        rt.queries.Load(),
		"batches":        rt.batches.Load(),
		"failovers":      rt.failovers.Load(),
		"inflight":       rt.limiter.InFlight(),
		"inflightCap":    rt.limiter.Cap(),
		"uptimeMs":       time.Since(rt.started).Milliseconds(),
	})
}

func (rt *router) handleDist(w http.ResponseWriter, r *http.Request) {
	u, err1 := parseNode(r.URL.Query().Get("u"), rt.n)
	v, err2 := parseNode(r.URL.Query().Get("v"), rt.n)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, errBadNode,
			"u and v must be node ids in [0, n)", map[string]any{"n": rt.n})
		return
	}
	stat := r.URL.Query().Get("stat")
	if stat == "" {
		stat = "min"
	}
	if stat != "min" && stat != "median" {
		writeError(w, http.StatusBadRequest, errBadStat,
			"stat must be min or median", map[string]any{"stat": stat})
		return
	}
	dists, err := rt.fanBatch(r.Context(), []frt.Pair{{U: u, V: v}}, stat, nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, errUpstreamUnavailable, err.Error(), nil)
		return
	}
	rt.queries.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "dist": dists[0]})
}

func (rt *router) handleBatch(w http.ResponseWriter, r *http.Request) {
	pairs, req, ok := decodeBatch(w, r, rt.n)
	if !ok {
		return
	}
	stat := req.Stat
	if stat == "" {
		stat = "min"
	}
	if stat != "min" && stat != "median" {
		// pertree is the worker-facing protocol, not a router stat: the
		// router exists to hide shard reassembly from clients.
		writeError(w, http.StatusBadRequest, errBadStat,
			"stat must be min or median", map[string]any{"stat": stat})
		return
	}
	bufp := rt.bufs.Get().(*[]float64)
	defer rt.bufs.Put(bufp)
	dists, err := rt.fanBatch(r.Context(), pairs, stat, *bufp)
	if err != nil {
		writeError(w, http.StatusBadGateway, errUpstreamUnavailable, err.Error(), nil)
		return
	}
	*bufp = dists[:0]
	rt.queries.Add(int64(len(pairs)))
	rt.batches.Add(1)
	writeJSON(w, http.StatusOK, batchResponse{Dists: dists})
}

// shardResult is one shard's pair-major per-tree block.
type shardResult struct {
	lo, hi int
	dists  []float64
}

// fanBatch asks each non-empty shard for its per-tree distances (retrying on
// other replicas), reassembles every pair's full K-vector in ascending tree
// order, and folds it exactly as OracleIndex does — strict-< for min, full
// sort for median — so the merged answers are bitwise identical to a single
// process evaluating the whole ensemble.
func (rt *router) fanBatch(ctx context.Context, pairs []frt.Pair, stat string, buf []float64) ([]float64, error) {
	// Overall budget: every shard may in the worst case try every worker
	// sequentially.
	deadline := rt.attemptTimeout*time.Duration(len(rt.workers)) + rt.attemptTimeout/2
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		results  []shardResult
		firstErr error
	)
	for i, shard := range rt.shards {
		if shard[0] == shard[1] {
			continue // spare worker, no primary shard
		}
		wg.Add(1)
		go func(primary int, lo, hi int) {
			defer wg.Done()
			dists, err := rt.fetchShard(ctx, primary, lo, hi, pairs)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard [%d, %d): %w", lo, hi, err)
					cancel() // no point finishing the other shards
				}
				return
			}
			results = append(results, shardResult{lo: lo, hi: hi, dists: dists})
		}(i, shard[0], shard[1])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Ascending tree order: the merge contract of OracleIndex.PerTreeBatch.
	sort.Slice(results, func(a, b int) bool { return results[a].lo < results[b].lo })

	out := buf
	if cap(out) < len(pairs) {
		out = make([]float64, len(pairs))
	}
	out = out[:len(pairs)]
	if stat == "min" {
		for i := range pairs {
			var best float64
			t := 0
			for _, sr := range results {
				w := sr.hi - sr.lo
				for j := 0; j < w; j++ {
					if d := sr.dists[i*w+j]; t == 0 || d < best {
						best = d
					}
					t++
				}
			}
			out[i] = best
		}
		return out, nil
	}
	ds := make([]float64, rt.k)
	for i := range pairs {
		t := 0
		for _, sr := range results {
			w := sr.hi - sr.lo
			copy(ds[t:t+w], sr.dists[i*w:(i+1)*w])
			t += w
		}
		sort.Float64s(ds)
		mid := rt.k / 2
		if rt.k%2 == 1 {
			out[i] = ds[mid]
		} else {
			out[i] = (ds[mid-1] + ds[mid]) / 2
		}
	}
	return out, nil
}

// fetchShard asks workers for trees [lo, hi) of every pair, primary replica
// first, then healthy replicas, then anything still standing. Each attempt
// runs under the per-attempt timeout and the shared in-flight limiter, so a
// hung worker costs one timeout — not the request — and a burst of retries
// cannot stampede the fleet.
func (rt *router) fetchShard(ctx context.Context, primary, lo, hi int, pairs []frt.Pair) ([]float64, error) {
	body, err := json.Marshal(batchRequest{
		Pairs: pairsToWire(pairs), Stat: "pertree", Trees: &[2]int{lo, hi},
	})
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt, wi := range rt.candidates(primary) {
		w := rt.workers[wi]
		if err := rt.limiter.Acquire(ctx); err != nil {
			return nil, err
		}
		dists, err := rt.postPerTree(ctx, w, body, len(pairs)*(hi-lo))
		rt.limiter.Release()
		if err == nil {
			w.healthy.Store(true)
			w.served.Add(1)
			if attempt > 0 {
				rt.failovers.Add(1)
			}
			return dists, nil
		}
		w.failures.Add(1)
		w.healthy.Store(false)
		lastErr = fmt.Errorf("worker %s: %w", w.url, err)
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// candidates orders worker indices for one shard: its primary, then the
// currently healthy replicas, then the rest — a dead replica is only asked
// once everything believed alive has failed.
func (rt *router) candidates(primary int) []int {
	order := make([]int, 0, len(rt.workers))
	order = append(order, primary)
	for i, w := range rt.workers {
		if i != primary && w.healthy.Load() {
			order = append(order, i)
		}
	}
	for i, w := range rt.workers {
		if i != primary && !w.healthy.Load() {
			order = append(order, i)
		}
	}
	return order
}

func (rt *router) postPerTree(ctx context.Context, w *workerRef, body []byte, wantDists int) ([]float64, error) {
	actx, cancel := context.WithTimeout(ctx, rt.attemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+"/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /batch: %s", resp.Status)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Dists) != wantDists {
		return nil, fmt.Errorf("shard answer has %d dists, want %d", len(br.Dists), wantDists)
	}
	return br.Dists, nil
}

func pairsToWire(pairs []frt.Pair) [][2]int64 {
	out := make([][2]int64, len(pairs))
	for i, p := range pairs {
		out[i] = [2]int64{int64(p.U), int64(p.V)}
	}
	return out
}
