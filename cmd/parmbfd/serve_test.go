package main

import (
	"errors"
	"os"
	"syscall"
	"testing"
	"time"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestListenAndServeBadAddr(t *testing.T) {
	if err := listenAndServe("256.256.256.256:0", nil, time.Second, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func TestListenAndServeStopsOnSignal(t *testing.T) {
	stopped := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- listenAndServe("127.0.0.1:0", nil, time.Second, func() { close(stopped) })
	}()
	// Let the listener come up before signalling, so the signal reaches the
	// serve loop rather than a not-yet-installed handler.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("signal-initiated exit returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("listenAndServe did not stop on SIGINT")
	}
	<-stopped
}

func TestBuildEnsembleErrors(t *testing.T) {
	if _, _, err := buildEnsemble(graph.NewBuilder(0).Freeze(), 2, par.NewRNG(1)); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := graph.PathGraph(4, 1)
	if _, _, err := buildEnsemble(g, 0, par.NewRNG(1)); err == nil {
		t.Fatal("zero trees accepted")
	}
}

func TestAppendJSONLineErrors(t *testing.T) {
	if err := appendJSONLine(t.TempDir(), map[string]int{"a": 1}); err == nil {
		t.Fatal("writing to a directory path succeeded")
	}
	if err := appendJSONLine(t.TempDir()+"/out.jsonl", make(chan int)); err == nil {
		t.Fatal("unmarshalable value accepted")
	}
}

func TestFirstError(t *testing.T) {
	if err := firstError([]error{nil, nil}); err != nil {
		t.Fatalf("all-nil slice: %v", err)
	}
	want := errors.New("boom")
	if err := firstError([]error{nil, want, errors.New("later")}); err != want {
		t.Fatalf("got %v, want the first non-nil error", err)
	}
}
