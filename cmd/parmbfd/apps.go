package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"parmbf/internal/apps/buyatbulk"
	"parmbf/internal/apps/kmedian"
	"parmbf/internal/apps/routing"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// This file is the application-scenario serving surface: POST /kmedian,
// /buyatbulk, and /route run the three §9–10 applications against the
// server's live ensemble — the same trees and oracle index the distance
// endpoints answer from, injected through scenario.Options so nothing is
// resampled per request. The endpoints need the embedded graph itself, so a
// snapshot-loaded server (which retains only the trees) answers 409
// scenario_unavailable.

// maxScenarioDemands caps one /buyatbulk demand list; like /update, a
// scenario run costs a fixpoint, so the cap is far below maxBatchPairs.
const maxScenarioDemands = 1 << 14

// maxScenarioCables caps the /buyatbulk cable catalogue — every cable type
// is scanned per loaded edge.
const maxScenarioCables = 64

// maxRoutePairs caps one /route batch: every answer carries a full path, so
// response size — not compute — is the binding constraint.
const maxRoutePairs = 1 << 10

// scenarioState loads the serving snapshot and rejects the request with a
// structured 409 when the server holds no graph (snapshot-loaded).
func (s *server) scenarioState(w http.ResponseWriter) (*serverState, bool) {
	st := s.state.Load()
	if st.g == nil {
		writeError(w, http.StatusConflict, errScenarioUnavailable,
			"server was loaded from a snapshot and holds no graph; application scenarios need a server built with -in or -gen", nil)
		return nil, false
	}
	return st, true
}

// kmedianRequest selects k centers. Seed drives candidate sampling (fixed
// seeds give reproducible answers); FirstTree/Trees restrict the per-tree
// loop — the router's sharding hook, 0/0 meaning "all trees".
type kmedianRequest struct {
	K         int    `json:"k"`
	Seed      uint64 `json:"seed"`
	FirstTree int    `json:"firstTree"`
	Trees     int    `json:"trees"`
}

type kmedianResponse struct {
	Centers    []int64 `json:"centers"`
	Cost       float64 `json:"cost"`
	Candidates int     `json:"candidates"`
}

func (s *server) handleKMedian(w http.ResponseWriter, r *http.Request) {
	st, ok := s.scenarioState(w)
	if !ok {
		return
	}
	var req kmedianRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.K < 1 || req.K > st.n {
		writeError(w, http.StatusBadRequest, errBadScenario,
			fmt.Sprintf("k must be in [1, %d]", st.n), map[string]any{"k": req.K, "n": st.n})
		return
	}
	res, err := kmedian.Solve(st.g, req.K, kmedian.Options{
		RNG:       par.NewRNG(req.Seed),
		Ensemble:  st.ens,
		FirstTree: req.FirstTree,
		Trees:     req.Trees,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadScenario, err.Error(), nil)
		return
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, kmedianResponse{
		Centers:    nodesToWire(res.Centers),
		Cost:       res.Cost,
		Candidates: len(res.Candidates),
	})
}

// wireDemand and wireCable are the /buyatbulk wire shapes.
type wireDemand struct {
	S      int64   `json:"s"`
	T      int64   `json:"t"`
	Amount float64 `json:"amount"`
}

type wireCable struct {
	Capacity float64 `json:"capacity"`
	Cost     float64 `json:"cost"`
}

type buyAtBulkRequest struct {
	Demands   []wireDemand `json:"demands"`
	Cables    []wireCable  `json:"cables"`
	FirstTree int          `json:"firstTree"`
	Trees     int          `json:"trees"`
}

type wirePurchase struct {
	U     int64 `json:"u"`
	V     int64 `json:"v"`
	Cable int   `json:"cable"`
	Count int   `json:"count"`
}

type buyAtBulkResponse struct {
	Purchases []wirePurchase `json:"purchases"`
	Cost      float64        `json:"cost"`
}

func (s *server) handleBuyAtBulk(w http.ResponseWriter, r *http.Request) {
	st, ok := s.scenarioState(w)
	if !ok {
		return
	}
	var req buyAtBulkRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Demands) > maxScenarioDemands {
		writeError(w, http.StatusRequestEntityTooLarge, errBatchTooLarge,
			fmt.Sprintf("demand list of %d exceeds cap %d", len(req.Demands), maxScenarioDemands),
			map[string]any{"max": maxScenarioDemands, "got": len(req.Demands)})
		return
	}
	if len(req.Cables) > maxScenarioCables {
		writeError(w, http.StatusRequestEntityTooLarge, errBatchTooLarge,
			fmt.Sprintf("cable catalogue of %d exceeds cap %d", len(req.Cables), maxScenarioCables),
			map[string]any{"max": maxScenarioCables, "got": len(req.Cables)})
		return
	}
	demands := make([]buyatbulk.Demand, len(req.Demands))
	for i, d := range req.Demands {
		if d.S < 0 || d.S >= int64(st.n) || d.T < 0 || d.T >= int64(st.n) {
			writeError(w, http.StatusBadRequest, errPairOutOfRange,
				fmt.Sprintf("demand %d = (%d, %d) out of range", i, d.S, d.T),
				map[string]any{"index": i, "n": st.n})
			return
		}
		demands[i] = buyatbulk.Demand{S: graph.Node(d.S), T: graph.Node(d.T), Amount: d.Amount}
	}
	cables := make([]buyatbulk.CableType, len(req.Cables))
	for i, c := range req.Cables {
		cables[i] = buyatbulk.CableType{Capacity: c.Capacity, Cost: c.Cost}
	}
	sol, err := buyatbulk.Solve(st.g, demands, cables, buyatbulk.Options{
		Ensemble:  st.ens,
		FirstTree: req.FirstTree,
		Trees:     req.Trees,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadScenario, err.Error(), nil)
		return
	}
	resp := buyAtBulkResponse{Cost: sol.Cost, Purchases: make([]wirePurchase, len(sol.Purchases))}
	for i, p := range sol.Purchases {
		resp.Purchases[i] = wirePurchase{U: int64(p.U), V: int64(p.V), Cable: p.Cable, Count: p.Count}
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// routeRequest asks for oblivious routes. The next-hop tables are built
// lazily on the first /route after a (re)start or /update and cached until
// the serving version moves.
type routeRequest struct {
	Pairs [][2]int64 `json:"pairs"`
}

type wireRoute struct {
	Path     []int64 `json:"path"`
	Length   float64 `json:"length"`
	Tree     int     `json:"tree"`
	TreeDist float64 `json:"treeDist"`
}

type routeResponse struct {
	Routes []wireRoute `json:"routes"`
}

// routingTables returns the oblivious-routing tables for the snapshot st,
// building them on first use and rebuilding after every /update (the cache
// key is the serving-state version).
func (s *server) routingTables(st *serverState) (*routing.Tables, error) {
	s.scenarioMu.Lock()
	defer s.scenarioMu.Unlock()
	if s.routeTables != nil && s.routeTablesAt == st.version {
		return s.routeTables, nil
	}
	rt, err := routing.Build(st.g, routing.Options{Ensemble: st.ens})
	if err != nil {
		return nil, err
	}
	s.routeTables, s.routeTablesAt = rt, st.version
	return rt, nil
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	st, ok := s.scenarioState(w)
	if !ok {
		return
	}
	var req routeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, errEmptyPairs, "pairs must be non-empty", nil)
		return
	}
	if len(req.Pairs) > maxRoutePairs {
		writeError(w, http.StatusRequestEntityTooLarge, errBatchTooLarge,
			fmt.Sprintf("route batch of %d pairs exceeds cap %d", len(req.Pairs), maxRoutePairs),
			map[string]any{"max": maxRoutePairs, "got": len(req.Pairs)})
		return
	}
	pairs := make([]frt.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= int64(st.n) || p[1] < 0 || p[1] >= int64(st.n) {
			writeError(w, http.StatusBadRequest, errPairOutOfRange,
				fmt.Sprintf("pair %d = [%d, %d] out of range", i, p[0], p[1]),
				map[string]any{"index": i, "pair": p, "n": st.n})
			return
		}
		pairs[i] = frt.Pair{U: graph.Node(p[0]), V: graph.Node(p[1])}
	}
	tables, err := s.routingTables(st)
	if err != nil {
		writeError(w, http.StatusInternalServerError, errBadScenario,
			"building routing tables: "+err.Error(), nil)
		return
	}
	routes, err := tables.RouteBatch(pairs)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadScenario, err.Error(), nil)
		return
	}
	resp := routeResponse{Routes: make([]wireRoute, len(routes))}
	for i, rr := range routes {
		resp.Routes[i] = wireRoute{
			Path: nodesToWire(rr.Path), Length: rr.Length,
			Tree: rr.Tree, TreeDist: rr.TreeDist,
		}
	}
	s.queries.Add(int64(len(pairs)))
	s.batches.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func nodesToWire(nodes []graph.Node) []int64 {
	out := make([]int64, len(nodes))
	for i, v := range nodes {
		out[i] = int64(v)
	}
	return out
}

// ---- router-side scenario serving ----
//
// /kmedian is the one scenario that shards naturally per tree: every worker
// solves its primary tree range (the same FirstTree/Trees hook a standalone
// caller uses) and the router keeps the cheapest center set — the same
// best-of-K fold a single process runs, distributed. /buyatbulk and /route
// build on state that is not tree-separable (one flow accumulation, one
// shared next-hop table), so the router forwards them whole to one worker,
// failing over across replicas like a shard fetch.

func (rt *router) handleKMedian(w http.ResponseWriter, r *http.Request) {
	var req kmedianRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.K < 1 || req.K > rt.n {
		writeError(w, http.StatusBadRequest, errBadScenario,
			fmt.Sprintf("k must be in [1, %d]", rt.n), map[string]any{"k": req.K, "n": rt.n})
		return
	}
	if req.FirstTree != 0 || req.Trees != 0 {
		// Shard selection is the router's job; a client asking for a slice
		// would silently compose with the router's own sharding.
		writeError(w, http.StatusBadRequest, errBadScenario,
			"firstTree/trees are worker-facing; the router shards per tree itself", nil)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(),
		rt.attemptTimeout*time.Duration(len(rt.workers))+rt.attemptTimeout/2)
	defer cancel()

	type shardOutcome struct {
		status int
		body   []byte
		err    error
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []shardOutcome
	)
	for i, shard := range rt.shards {
		if shard[0] == shard[1] {
			continue
		}
		wg.Add(1)
		go func(primary, lo, hi int) {
			defer wg.Done()
			body, err := json.Marshal(kmedianRequest{K: req.K, Seed: req.Seed, FirstTree: lo, Trees: hi - lo})
			var status int
			var resp []byte
			if err == nil {
				status, resp, err = rt.fetchScenario(ctx, primary, "/kmedian", body)
			}
			mu.Lock()
			outcomes = append(outcomes, shardOutcome{status: status, body: resp, err: err})
			mu.Unlock()
		}(i, shard[0], shard[1])
	}
	wg.Wait()
	var best *kmedianResponse
	for _, oc := range outcomes {
		if oc.err != nil {
			writeError(w, http.StatusBadGateway, errUpstreamUnavailable, oc.err.Error(), nil)
			return
		}
		if oc.status != http.StatusOK {
			// Semantic rejection (bad k, snapshot-only worker): every shard
			// fails identically, forward the first worker's structured error.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(oc.status)
			_, _ = w.Write(oc.body)
			return
		}
		var kr kmedianResponse
		if err := json.Unmarshal(oc.body, &kr); err != nil {
			writeError(w, http.StatusBadGateway, errUpstreamUnavailable,
				"bad worker /kmedian response: "+err.Error(), nil)
			return
		}
		if best == nil || kr.Cost < best.Cost {
			kr2 := kr
			best = &kr2
		}
	}
	if best == nil {
		writeError(w, http.StatusBadGateway, errUpstreamUnavailable, "no shard answered", nil)
		return
	}
	rt.queries.Add(1)
	rt.batches.Add(1)
	writeJSON(w, http.StatusOK, best)
}

func (rt *router) handleBuyAtBulk(w http.ResponseWriter, r *http.Request) {
	rt.proxyScenario(w, r, "/buyatbulk")
}

func (rt *router) handleRoute(w http.ResponseWriter, r *http.Request) {
	rt.proxyScenario(w, r, "/route")
}

// proxyScenario forwards one scenario request whole to a single worker,
// trying replicas in health order. Transport failures fail over; any HTTP
// response — success or structured rejection — is relayed verbatim.
func (rt *router) proxyScenario(w http.ResponseWriter, r *http.Request, path string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(),
		rt.attemptTimeout*time.Duration(len(rt.workers))+rt.attemptTimeout/2)
	defer cancel()
	// Spread scenario load round-robin over the fleet: each request starts at
	// a different primary.
	primary := int(rt.batches.Add(1)-1) % len(rt.workers)
	status, resp, err := rt.fetchScenario(ctx, primary, path, body)
	if err != nil {
		writeError(w, http.StatusBadGateway, errUpstreamUnavailable, err.Error(), nil)
		return
	}
	if status == http.StatusOK {
		rt.queries.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(resp)
}

// fetchScenario posts body to path on the shard's candidate workers in
// health order, returning the first HTTP response obtained. Like fetchShard,
// each attempt runs under the per-attempt timeout and the shared in-flight
// limiter; only transport errors fail over — a structured rejection is a
// response, not a reason to retry elsewhere.
func (rt *router) fetchScenario(ctx context.Context, primary int, path string, body []byte) (int, []byte, error) {
	var lastErr error
	for attempt, wi := range rt.candidates(primary) {
		wk := rt.workers[wi]
		if err := rt.limiter.Acquire(ctx); err != nil {
			return 0, nil, err
		}
		status, resp, err := rt.postScenario(ctx, wk, path, body)
		rt.limiter.Release()
		if err == nil {
			wk.healthy.Store(true)
			wk.served.Add(1)
			if attempt > 0 {
				rt.failovers.Add(1)
			}
			return status, resp, nil
		}
		wk.failures.Add(1)
		wk.healthy.Store(false)
		lastErr = fmt.Errorf("worker %s: %w", wk.url, err)
		if ctx.Err() != nil {
			return 0, nil, lastErr
		}
	}
	return 0, nil, lastErr
}

func (rt *router) postScenario(ctx context.Context, wk *workerRef, path string, body []byte) (int, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, rt.attemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, wk.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
