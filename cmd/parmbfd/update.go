package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"parmbf/internal/graph"
)

// maxUpdateEdits caps one /update batch. Edits are far more expensive than
// queries (each batch triggers a fixpoint repair), so the cap is much
// smaller than maxBatchPairs.
const maxUpdateEdits = 1 << 14

// updateEdit is one wire-format edge edit of a POST /update batch.
type updateEdit struct {
	// Op is "insert", "delete", or "reweight".
	Op string `json:"op"`
	U  int64  `json:"u"`
	V  int64  `json:"v"`
	// Weight is required for insert and reweight, ignored for delete.
	Weight float64 `json:"weight,omitempty"`
}

type updateRequest struct {
	Edits []updateEdit `json:"edits"`
}

// updateResponse reports one applied batch. Version is the serving-state
// version now visible to queries: any /dist or /batch admitted after this
// response was written sees at least this version.
type updateResponse struct {
	Version         int64 `json:"version"`
	Edges           int   `json:"edges"`
	AffectedTrees   int   `json:"affectedTrees"`
	RecomputedNodes int   `json:"recomputedNodes"`
	DecreaseOnly    bool  `json:"decreaseOnly"`
	ElapsedMs       int64 `json:"elapsedMs"`
}

// decodeUpdate parses a /update body into graph edits, writing the
// structured error itself on failure. Wire-level shape problems (unknown op,
// edit-count cap) are rejected here; semantic validation (range, duplicate
// edits, missing edges, weight domain) is graph.validateEdits' job and
// surfaces as bad_edit from the handler.
func decodeUpdate(w http.ResponseWriter, r *http.Request) ([]graph.Edit, bool) {
	var req updateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeDecodeError(w, err)
		return nil, false
	}
	if len(req.Edits) == 0 {
		writeError(w, http.StatusBadRequest, errBadEdit, "edits must be non-empty", nil)
		return nil, false
	}
	if len(req.Edits) > maxUpdateEdits {
		writeError(w, http.StatusRequestEntityTooLarge, errBatchTooLarge,
			fmt.Sprintf("batch of %d edits exceeds cap %d", len(req.Edits), maxUpdateEdits),
			map[string]any{"max": maxUpdateEdits, "got": len(req.Edits)})
		return nil, false
	}
	edits := make([]graph.Edit, len(req.Edits))
	for i, e := range req.Edits {
		var op graph.EditOp
		switch e.Op {
		case "insert":
			op = graph.EditInsert
		case "delete":
			op = graph.EditDelete
		case "reweight":
			op = graph.EditReweight
		default:
			writeError(w, http.StatusBadRequest, errBadEdit,
				fmt.Sprintf("edit %d: op must be insert, delete, or reweight", i),
				map[string]any{"index": i, "op": e.Op})
			return nil, false
		}
		edits[i] = graph.Edit{Op: op, U: graph.Node(e.U), V: graph.Node(e.V), Weight: e.Weight}
	}
	return edits, true
}

// handleUpdate applies an edge edit batch to the live ensemble and swaps the
// serving snapshot atomically. Updates are serialised end to end (repair +
// reindex + swap) under updateMu; queries are never blocked — they keep
// answering from the previous snapshot until the single atomic swap, which
// is the bounded-staleness contract documented in the README. A failed
// batch (validation error, disconnecting deletion) changes nothing: the old
// snapshot keeps serving.
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		writeError(w, http.StatusConflict, errUpdateUnsupported,
			"server is static (built without -dynamic); live updates unavailable", nil)
		return
	}
	edits, ok := decodeUpdate(w, r)
	if !ok {
		return
	}
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	t0 := time.Now()
	stats, err := s.dyn.ApplyEdits(edits)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadEdit, err.Error(), nil)
		return
	}
	old := s.state.Load()
	st := &serverState{n: old.n, m: s.dyn.Graph().M(), version: old.version + 1,
		ens: s.dyn.Ensemble(), g: s.dyn.Graph()}
	st.idx, err = st.ens.Index()
	if err != nil {
		// Repair succeeded but indexing failed — the old snapshot keeps
		// serving; the dynamic state has already advanced, so surface this
		// loudly rather than silently diverging.
		writeError(w, http.StatusInternalServerError, errUpdateUnsupported,
			"reindex after update failed: "+err.Error(), nil)
		return
	}
	s.state.Store(st)
	s.updates.Add(1)
	writeJSON(w, http.StatusOK, updateResponse{
		Version:         st.version,
		Edges:           st.m,
		AffectedTrees:   stats.AffectedTrees,
		RecomputedNodes: stats.RecomputedNodes,
		DecreaseOnly:    stats.DecreaseOnly,
		ElapsedMs:       time.Since(t0).Milliseconds(),
	})
}
