package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func testServer(t *testing.T) (*server, *httptest.Server, *graph.Graph, *frt.Ensemble) {
	t.Helper()
	rng := par.NewRNG(5)
	g := graph.RandomConnected(48, 140, 8, rng)
	ens, meta, err := buildEnsemble(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(g, ens, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return s, ts, g, ens
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthzAndStats(t *testing.T) {
	s, ts, g, _ := testServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code %d, body %v", code, health)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: code %d", code)
	}
	if int(stats["nodes"].(float64)) != g.N() || int(stats["trees"].(float64)) != s.state.Load().idx.NumTrees() {
		t.Fatalf("stats mismatch: %v", stats)
	}
	if int(stats["edges"].(float64)) != g.M() {
		t.Fatalf("stats edges = %v, want %d", stats["edges"], g.M())
	}
}

func TestDistEndpointMatchesEnsemble(t *testing.T) {
	_, ts, _, ens := testServer(t)
	for _, q := range []struct{ u, v int }{{0, 1}, {3, 40}, {7, 7}, {47, 0}} {
		var got struct {
			Dist float64 `json:"dist"`
		}
		url := ts.URL + "/dist?u=" + itoa(q.u) + "&v=" + itoa(q.v)
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("dist(%d,%d): code %d", q.u, q.v, code)
		}
		if want := ens.Min(graph.Node(q.u), graph.Node(q.v)); got.Dist != want {
			t.Fatalf("dist(%d,%d) = %v, ensemble Min %v", q.u, q.v, got.Dist, want)
		}
		var med struct {
			Dist float64 `json:"dist"`
		}
		if code := getJSON(t, url+"&stat=median", &med); code != http.StatusOK {
			t.Fatalf("median dist(%d,%d): code %d", q.u, q.v, code)
		}
		if want := ens.Median(graph.Node(q.u), graph.Node(q.v)); med.Dist != want {
			t.Fatalf("median(%d,%d) = %v, ensemble %v", q.u, q.v, med.Dist, want)
		}
	}
}

func TestDistEndpointRejectsBadInput(t *testing.T) {
	_, ts, _, _ := testServer(t)
	for _, q := range []string{"u=0", "u=x&v=1", "u=-1&v=2", "u=0&v=99999", "u=3.9&v=2", "u=4junk&v=2", "u=0&v=1&stat=mean"} {
		if code := getJSON(t, ts.URL+"/dist?"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("query %q: code %d, want 400", q, code)
		}
	}
}

func postJSON(t *testing.T, url, body string) (int, batchResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, br
}

// postForError posts a body expected to fail and decodes the structured
// error envelope.
func postForError(t *testing.T, url, body string) (int, apiError) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("error response is not the documented envelope: %v", err)
	}
	return resp.StatusCode, er.Error
}

func TestBatchEndpointMatchesMinBatch(t *testing.T) {
	s, ts, g, ens := testServer(t)
	rng := par.NewRNG(9)
	req := batchRequest{Pairs: make([][2]int64, 64)}
	for i := range req.Pairs {
		req.Pairs[i] = [2]int64{int64(rng.Intn(g.N())), int64(rng.Intn(g.N()))}
	}
	body, _ := json.Marshal(req)
	// Twice: the second run exercises the pooled response buffer.
	for round := 0; round < 2; round++ {
		code, br := postJSON(t, ts.URL+"/batch", string(body))
		if code != http.StatusOK {
			t.Fatalf("batch round %d: code %d", round, code)
		}
		if len(br.Dists) != len(req.Pairs) {
			t.Fatalf("batch round %d: %d dists, want %d", round, len(br.Dists), len(req.Pairs))
		}
		for i, p := range req.Pairs {
			if want := ens.Min(graph.Node(p[0]), graph.Node(p[1])); br.Dists[i] != want {
				t.Fatalf("batch round %d pair %d: %v, want %v", round, i, br.Dists[i], want)
			}
		}
	}
	if got := s.batches.Load(); got != 2 {
		t.Fatalf("batches counter = %d, want 2", got)
	}
	if got := s.queries.Load(); got != int64(2*len(req.Pairs)) {
		t.Fatalf("queries counter = %d, want %d", got, 2*len(req.Pairs))
	}
}

// TestBatchStructuredErrors pins the documented error schema: every
// rejection carries {"error":{"code":…,"message":…}} with a stable
// machine-readable code, including cap-exceeded (with max/got details) and
// malformed pairs (with the offending index).
func TestBatchStructuredErrors(t *testing.T) {
	_, ts, _, _ := testServer(t)
	cases := []struct {
		name, body, code string
		status           int
	}{
		{"not json", "{", errBadJSON, http.StatusBadRequest},
		{"empty pairs", `{"pairs":[]}`, errEmptyPairs, http.StatusBadRequest},
		{"out of range", `{"pairs":[[0,99999]]}`, errPairOutOfRange, http.StatusBadRequest},
		{"negative", `{"pairs":[[-1,0]]}`, errPairOutOfRange, http.StatusBadRequest},
		{"bad stat", `{"pairs":[[0,1]],"stat":"mean"}`, errBadStat, http.StatusBadRequest},
		{"bad tree range", `{"pairs":[[0,1]],"stat":"pertree","trees":[3,99]}`, errBadTreeRange, http.StatusBadRequest},
	}
	for _, c := range cases {
		status, e := postForError(t, ts.URL+"/batch", c.body)
		if status != c.status || e.Code != c.code {
			t.Fatalf("%s: status %d code %q, want %d %q", c.name, status, e.Code, c.status, c.code)
		}
		if e.Message == "" {
			t.Fatalf("%s: empty error message", c.name)
		}
	}
	// Malformed-pair details name the offending pair.
	_, e := postForError(t, ts.URL+"/batch", `{"pairs":[[0,1],[2,99999]]}`)
	if e.Details["index"].(float64) != 1 {
		t.Fatalf("pair_out_of_range details = %v, want index 1", e.Details)
	}
	// Over-cap batch: generated, not hand-written; details carry the cap.
	var buf bytes.Buffer
	buf.WriteString(`{"pairs":[`)
	for i := 0; i <= maxBatchPairs; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString("[0,1]")
	}
	buf.WriteString(`]}`)
	status, e := postForError(t, ts.URL+"/batch", buf.String())
	if status != http.StatusRequestEntityTooLarge || e.Code != errBatchTooLarge {
		t.Fatalf("over-cap batch: status %d code %q, want 413 %q", status, e.Code, errBatchTooLarge)
	}
	if int(e.Details["max"].(float64)) != maxBatchPairs || int(e.Details["got"].(float64)) != maxBatchPairs+1 {
		t.Fatalf("batch_too_large details = %v", e.Details)
	}
}

func TestBatchMedianStat(t *testing.T) {
	_, ts, _, ens := testServer(t)
	code, br := postJSON(t, ts.URL+"/batch", `{"pairs":[[0,1],[2,3]],"stat":"median"}`)
	if code != http.StatusOK {
		t.Fatalf("median batch: code %d", code)
	}
	for i, p := range [][2]graph.Node{{0, 1}, {2, 3}} {
		if want := ens.Median(p[0], p[1]); br.Dists[i] != want {
			t.Fatalf("median pair %d: %v, want %v", i, br.Dists[i], want)
		}
	}
}

// TestBatchPerTreeStat pins the worker half of the sharding protocol: a
// pertree request returns the pair-major per-tree block of the requested
// shard, matching OracleIndex.PerTreeBatch bitwise, and echoes the shard.
func TestBatchPerTreeStat(t *testing.T) {
	s, ts, _, _ := testServer(t)
	pairs := []frt.Pair{{U: 0, V: 1}, {U: 7, V: 7}, {U: 40, V: 3}}
	want, err := s.state.Load().idx.PerTreeBatch(pairs, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, br := postJSON(t, ts.URL+"/batch", `{"pairs":[[0,1],[7,7],[40,3]],"stat":"pertree","trees":[1,3]}`)
	if code != http.StatusOK {
		t.Fatalf("pertree batch: code %d", code)
	}
	if br.Trees == nil || *br.Trees != [2]int{1, 3} {
		t.Fatalf("pertree response trees = %v, want [1,3]", br.Trees)
	}
	if len(br.Dists) != len(want) {
		t.Fatalf("pertree dists: %d values, want %d", len(br.Dists), len(want))
	}
	for i := range want {
		if br.Dists[i] != want[i] {
			t.Fatalf("pertree dist %d = %v, want %v", i, br.Dists[i], want[i])
		}
	}
	// Default shard is the whole ensemble.
	code, br = postJSON(t, ts.URL+"/batch", `{"pairs":[[0,1]],"stat":"pertree"}`)
	if code != http.StatusOK || *br.Trees != [2]int{0, s.state.Load().idx.NumTrees()} {
		t.Fatalf("default pertree shard: code %d trees %v", code, br.Trees)
	}
}

// TestServerFromSnapshotMatchesBuilt round-trips the ensemble through the
// snapshot file codec and checks the reloaded server's HTTP answers are
// bitwise identical to the freshly built one's — the cmd-level differential
// that -save / -load preserve the serving contract end to end.
func TestServerFromSnapshotMatchesBuilt(t *testing.T) {
	_, ts, g, ens := testServer(t)
	path := filepath.Join(t.TempDir(), "oracle.snap")
	meta := frt.SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}
	if err := frt.WriteSnapshotFile(path, ens, meta); err != nil {
		t.Fatal(err)
	}
	ens2, meta2, err := frt.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Fatalf("snapshot meta %+v, want %+v", meta2, meta)
	}
	s2, err := newServer(nil, ens2, meta2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.mux())
	defer ts2.Close()

	body := `{"pairs":[[0,1],[3,40],[7,7],[47,0]],"stat":"median"}`
	_, fresh := postJSON(t, ts.URL+"/batch", body)
	_, loaded := postJSON(t, ts2.URL+"/batch", body)
	for i := range fresh.Dists {
		if fresh.Dists[i] != loaded.Dists[i] {
			t.Fatalf("pair %d: loaded %v, fresh %v", i, loaded.Dists[i], fresh.Dists[i])
		}
	}
}

// TestClientAgainstServer spins the real handler stack up on a loopback
// listener and runs the load-generating client against it end to end,
// including the JSON summary line.
func TestClientAgainstServer(t *testing.T) {
	_, ts, _, _ := testServer(t)
	out := filepath.Join(t.TempDir(), "client.json")
	if err := runClient(ts.URL, "batch", 8, 16, 2, 3, out); err != nil {
		t.Fatal(err)
	}
	if err := runClient(ts.URL, "batch", 8, 16, 2, 3, out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 {
		t.Fatalf("summary file has %d lines, want 2 (append semantics)", len(lines))
	}
	var sum clientSummary
	if err := json.Unmarshal([]byte(lines[1]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Requests != 8 || sum.Batch != 16 || sum.Failed != 0 || sum.PairsPerSec <= 0 {
		t.Fatalf("bad summary: %+v", sum)
	}
}

// TestClientReportsServerErrors covers the client's failure accounting: a
// server whose /stats looks healthy but whose /batch fails must surface
// the first error, not report success.
func TestClientReportsServerErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, statsResponse{Nodes: 64, Trees: 4})
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, _ *http.Request) {
		writeError(w, http.StatusInternalServerError, "internal", "boom", nil)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if err := runClient(ts.URL, "batch", 4, 8, 2, 3, ""); err == nil {
		t.Fatal("client reported success against a failing /batch")
	}
	if err := runClient("http://127.0.0.1:1", "batch", 1, 1, 1, 1, ""); err == nil {
		t.Fatal("client reported success against a dead target")
	}
	if err := runClient(ts.URL, "batch", 0, 8, 2, 3, ""); err == nil {
		t.Fatal("-requests 0 accepted")
	}
	if err := runClient(ts.URL, "batch", 4, -1, 2, 3, ""); err == nil {
		t.Fatal("negative -batch accepted")
	}
}

func TestLoadGraphGenerators(t *testing.T) {
	rng := par.NewRNG(1)
	for _, gen := range []string{"random", "grid", "path", "cycle", "geometric", "lollipop", "powerlaw"} {
		g, err := loadGraph("", gen, 32, 0, rng)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", gen)
		}
	}
	if _, err := loadGraph("", "nope", 16, 0, rng); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := loadGraph("/nonexistent/file", "", 0, 0, rng); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSplitWorkerURLs(t *testing.T) {
	got := splitWorkerURLs(" http://a:1/, ,http://b:2 ,")
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("splitWorkerURLs = %v, want %v", got, want)
	}
	if urls := splitWorkerURLs(""); len(urls) != 0 {
		t.Fatalf("empty -workers parsed to %v", urls)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
