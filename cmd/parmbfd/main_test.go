package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func testServer(t *testing.T) (*server, *httptest.Server, *graph.Graph, *frt.Ensemble) {
	t.Helper()
	rng := par.NewRNG(5)
	g := graph.RandomConnected(48, 140, 8, rng)
	s, ens, err := newServer(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return s, ts, g, ens
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthzAndStats(t *testing.T) {
	s, ts, g, _ := testServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code %d, body %v", code, health)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: code %d", code)
	}
	if int(stats["nodes"].(float64)) != g.N() || int(stats["trees"].(float64)) != s.idx.NumTrees() {
		t.Fatalf("stats mismatch: %v", stats)
	}
}

func TestDistEndpointMatchesEnsemble(t *testing.T) {
	_, ts, _, ens := testServer(t)
	for _, q := range []struct{ u, v int }{{0, 1}, {3, 40}, {7, 7}, {47, 0}} {
		var got struct {
			Dist float64 `json:"dist"`
		}
		url := ts.URL + "/dist?u=" + itoa(q.u) + "&v=" + itoa(q.v)
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("dist(%d,%d): code %d", q.u, q.v, code)
		}
		if want := ens.Min(graph.Node(q.u), graph.Node(q.v)); got.Dist != want {
			t.Fatalf("dist(%d,%d) = %v, ensemble Min %v", q.u, q.v, got.Dist, want)
		}
		var med struct {
			Dist float64 `json:"dist"`
		}
		if code := getJSON(t, url+"&stat=median", &med); code != http.StatusOK {
			t.Fatalf("median dist(%d,%d): code %d", q.u, q.v, code)
		}
		if want := ens.Median(graph.Node(q.u), graph.Node(q.v)); med.Dist != want {
			t.Fatalf("median(%d,%d) = %v, ensemble %v", q.u, q.v, med.Dist, want)
		}
	}
}

func TestDistEndpointRejectsBadInput(t *testing.T) {
	_, ts, _, _ := testServer(t)
	for _, q := range []string{"u=0", "u=x&v=1", "u=-1&v=2", "u=0&v=99999", "u=3.9&v=2", "u=4junk&v=2", "u=0&v=1&stat=mean"} {
		if code := getJSON(t, ts.URL+"/dist?"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("query %q: code %d, want 400", q, code)
		}
	}
}

func postJSON(t *testing.T, url, body string) (int, batchResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, br
}

func TestBatchEndpointMatchesMinBatch(t *testing.T) {
	s, ts, g, ens := testServer(t)
	rng := par.NewRNG(9)
	req := batchRequest{Pairs: make([][2]int64, 64)}
	for i := range req.Pairs {
		req.Pairs[i] = [2]int64{int64(rng.Intn(g.N())), int64(rng.Intn(g.N()))}
	}
	body, _ := json.Marshal(req)
	// Twice: the second run exercises the pooled response buffer.
	for round := 0; round < 2; round++ {
		code, br := postJSON(t, ts.URL+"/batch", string(body))
		if code != http.StatusOK {
			t.Fatalf("batch round %d: code %d", round, code)
		}
		if len(br.Dists) != len(req.Pairs) {
			t.Fatalf("batch round %d: %d dists, want %d", round, len(br.Dists), len(req.Pairs))
		}
		for i, p := range req.Pairs {
			if want := ens.Min(graph.Node(p[0]), graph.Node(p[1])); br.Dists[i] != want {
				t.Fatalf("batch round %d pair %d: %v, want %v", round, i, br.Dists[i], want)
			}
		}
	}
	if got := s.batches.Load(); got != 2 {
		t.Fatalf("batches counter = %d, want 2", got)
	}
	if got := s.queries.Load(); got != int64(2*len(req.Pairs)) {
		t.Fatalf("queries counter = %d, want %d", got, 2*len(req.Pairs))
	}
}

func TestBatchEndpointRejectsBadInput(t *testing.T) {
	_, ts, _, _ := testServer(t)
	cases := []struct {
		name, body string
		code       int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"empty pairs", `{"pairs":[]}`, http.StatusBadRequest},
		{"out of range", `{"pairs":[[0,99999]]}`, http.StatusBadRequest},
		{"negative", `{"pairs":[[-1,0]]}`, http.StatusBadRequest},
		{"bad stat", `{"pairs":[[0,1]],"stat":"mean"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _ := postJSON(t, ts.URL+"/batch", c.body); code != c.code {
			t.Fatalf("%s: code %d, want %d", c.name, code, c.code)
		}
	}
	// Over-cap batch: generated, not hand-written.
	var buf bytes.Buffer
	buf.WriteString(`{"pairs":[`)
	for i := 0; i <= maxBatchPairs; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString("[0,1]")
	}
	buf.WriteString(`]}`)
	if code, _ := postJSON(t, ts.URL+"/batch", buf.String()); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap batch: code %d, want 413", code)
	}
}

func TestBatchMedianStat(t *testing.T) {
	_, ts, _, ens := testServer(t)
	code, br := postJSON(t, ts.URL+"/batch", `{"pairs":[[0,1],[2,3]],"stat":"median"}`)
	if code != http.StatusOK {
		t.Fatalf("median batch: code %d", code)
	}
	for i, p := range [][2]graph.Node{{0, 1}, {2, 3}} {
		if want := ens.Median(p[0], p[1]); br.Dists[i] != want {
			t.Fatalf("median pair %d: %v, want %v", i, br.Dists[i], want)
		}
	}
}

// TestClientAgainstServer spins the real handler stack up on a loopback
// listener and runs the load-generating client against it end to end.
func TestClientAgainstServer(t *testing.T) {
	_, ts, _, _ := testServer(t)
	if err := runClient(ts.URL, 8, 16, 2, 3); err != nil {
		t.Fatal(err)
	}
}

// TestClientReportsServerErrors covers the client's failure accounting: a
// server whose /stats looks healthy but whose /batch fails must surface
// the first error, not report success.
func TestClientReportsServerErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, statsResponse{Nodes: 64, Trees: 4})
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, _ *http.Request) {
		writeError(w, http.StatusInternalServerError, "boom")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if err := runClient(ts.URL, 4, 8, 2, 3); err == nil {
		t.Fatal("client reported success against a failing /batch")
	}
	if err := runClient("http://127.0.0.1:1", 1, 1, 1, 1); err == nil {
		t.Fatal("client reported success against a dead target")
	}
	if err := runClient(ts.URL, 0, 8, 2, 3); err == nil {
		t.Fatal("-requests 0 accepted")
	}
	if err := runClient(ts.URL, 4, -1, 2, 3); err == nil {
		t.Fatal("negative -batch accepted")
	}
}

func TestLoadGraphGenerators(t *testing.T) {
	rng := par.NewRNG(1)
	for _, gen := range []string{"random", "grid", "path", "cycle", "geometric", "lollipop", "powerlaw"} {
		g, err := loadGraph("", gen, 32, 0, rng)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", gen)
		}
	}
	if _, err := loadGraph("", "nope", 16, 0, rng); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := loadGraph("/nonexistent/file", "", 0, 0, rng); err == nil {
		t.Fatal("missing file accepted")
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
