package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// testDynamicServer builds a small dynamic server (direct pipeline).
func testDynamicServer(t *testing.T) (*server, *httptest.Server, *frt.DynamicEnsemble) {
	t.Helper()
	g := graph.RandomConnected(40, 120, 8, par.NewRNG(71))
	dyn, err := frt.NewDynamicEnsemble(g, 3, par.NewRNG(72), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(g, dyn.Ensemble(), frt.SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}, dyn)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return s, ts, dyn
}

func postJSONValue(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestUpdateEndpoint(t *testing.T) {
	s, ts, dyn := testDynamicServer(t)
	edges := dyn.Graph().Edges()
	e := edges[5]

	var before struct {
		Dist float64 `json:"dist"`
	}
	getJSON(t, ts.URL+"/dist?u="+itoa(int(e.U))+"&v="+itoa(int(e.V)), &before)

	var ur updateResponse
	code := postJSONValue(t, ts.URL+"/update", updateRequest{Edits: []updateEdit{
		{Op: "reweight", U: int64(e.U), V: int64(e.V), Weight: e.Weight / 8},
	}}, &ur)
	if code != http.StatusOK || ur.Version != 1 {
		t.Fatalf("update: code %d, resp %+v", code, ur)
	}

	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if int64(stats["version"].(float64)) != 1 || int64(stats["updates"].(float64)) != 1 {
		t.Fatalf("stats after update: %v", stats)
	}
	if stats["dynamic"] != true {
		t.Fatalf("stats: dynamic = %v", stats["dynamic"])
	}

	// The swapped index must answer exactly as a reference index over the
	// updated ensemble.
	refIdx, err := dyn.Ensemble().Index()
	if err != nil {
		t.Fatal(err)
	}
	var after struct {
		Dist float64 `json:"dist"`
	}
	getJSON(t, ts.URL+"/dist?u="+itoa(int(e.U))+"&v="+itoa(int(e.V)), &after)
	if want := refIdx.Min(e.U, e.V); after.Dist != want {
		t.Fatalf("post-update dist %v, want %v", after.Dist, want)
	}
	_ = s
}

func TestUpdateRejectsStaticServer(t *testing.T) {
	_, ts, _, _ := testServer(t)
	var er errorResponse
	code := postJSONValue(t, ts.URL+"/update", updateRequest{Edits: []updateEdit{
		{Op: "delete", U: 0, V: 1},
	}}, &er)
	if code != http.StatusConflict || er.Error.Code != errUpdateUnsupported {
		t.Fatalf("static /update: code %d, error %+v", code, er.Error)
	}
}

func TestUpdateBadBatches(t *testing.T) {
	_, ts, dyn := testDynamicServer(t)
	treesBefore := dyn.Trees()
	cases := []struct {
		name     string
		body     any
		wantCode int
		wantErr  string
	}{
		{"bad json", "{", http.StatusBadRequest, errBadJSON},
		{"empty", updateRequest{}, http.StatusBadRequest, errBadEdit},
		{"unknown op", updateRequest{Edits: []updateEdit{{Op: "upsert", U: 0, V: 1, Weight: 1}}},
			http.StatusBadRequest, errBadEdit},
		{"missing edge", updateRequest{Edits: []updateEdit{{Op: "delete", U: 0, V: 39}}},
			http.StatusBadRequest, errBadEdit},
		{"out of range", updateRequest{Edits: []updateEdit{{Op: "insert", U: 0, V: 4096, Weight: 1}}},
			http.StatusBadRequest, errBadEdit},
		{"too many edits", updateRequest{Edits: make([]updateEdit, maxUpdateEdits+1)},
			http.StatusRequestEntityTooLarge, errBatchTooLarge},
	}
	for _, tc := range cases {
		var er errorResponse
		var code int
		if s, ok := tc.body.(string); ok {
			resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(s))
			if err != nil {
				t.Fatal(err)
			}
			code = resp.StatusCode
			err = json.NewDecoder(resp.Body).Decode(&er)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
		} else {
			code = postJSONValue(t, ts.URL+"/update", tc.body, &er)
		}
		if code != tc.wantCode || er.Error.Code != tc.wantErr {
			t.Errorf("%s: code %d error %q, want %d %q", tc.name, code, er.Error.Code, tc.wantCode, tc.wantErr)
		}
	}
	// Every rejected batch must have left the serving state untouched.
	if v := statsVersion(t, ts); v != 0 {
		t.Fatalf("failed updates bumped version to %d", v)
	}
	after := dyn.Trees()
	for i := range treesBefore {
		if treesBefore[i] != after[i] {
			t.Fatal("failed updates changed the ensemble")
		}
	}
}

func statsVersion(t *testing.T, ts *httptest.Server) int64 {
	t.Helper()
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	return int64(stats["version"].(float64))
}

// TestBatchBodyTooLarge pins the MaxBytesReader hardening: a body over the
// transport cap must yield a structured 413, not a hang or a bare 400.
func TestBatchBodyTooLarge(t *testing.T) {
	_, ts, _, _ := testServer(t)
	huge := bytes.Repeat([]byte{' '}, maxBodyBytes+2)
	copy(huge, `{"pairs":[[0,1]`)
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge || er.Error.Code != errBodyTooLarge {
		t.Fatalf("oversized body: code %d, error %+v", resp.StatusCode, er.Error)
	}
}

// TestRouterForwardsUpdate: a router must fan an edit batch to every worker
// and report each replica's new version; queries after the update must be
// answered from the updated ensembles.
func TestRouterForwardsUpdate(t *testing.T) {
	// Two dynamic workers built from the same seed hold identical ensembles.
	g := graph.RandomConnected(40, 120, 8, par.NewRNG(71))
	var servers []*server
	var urls []string
	for i := 0; i < 2; i++ {
		dyn, err := frt.NewDynamicEnsemble(g, 4, par.NewRNG(72), nil)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := newServer(g, dyn.Ensemble(), frt.SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}, dyn)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(ws.mux())
		t.Cleanup(ts.Close)
		servers = append(servers, ws)
		urls = append(urls, ts.URL)
	}
	rt, err := newRouter(urls, 8, 2*time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt.mux())
	t.Cleanup(rts.Close)

	e := g.Edges()[3]
	var out struct {
		Workers []struct {
			URL     string `json:"url"`
			Version int64  `json:"version"`
		} `json:"workers"`
	}
	code := postJSONValue(t, rts.URL+"/update", updateRequest{Edits: []updateEdit{
		{Op: "reweight", U: int64(e.U), V: int64(e.V), Weight: e.Weight / 4},
	}}, &out)
	if code != http.StatusOK || len(out.Workers) != 2 {
		t.Fatalf("router update: code %d, body %+v", code, out)
	}
	for _, wu := range out.Workers {
		if wu.Version != 1 {
			t.Fatalf("worker %s at version %d, want 1", wu.URL, wu.Version)
		}
	}
	// Router answers must come from the updated ensembles and match a
	// single-server reference bitwise.
	refIdx, err := servers[0].dyn.Ensemble().Index()
	if err != nil {
		t.Fatal(err)
	}
	var dist struct {
		Dist float64 `json:"dist"`
	}
	if code := getJSON(t, rts.URL+"/dist?u="+itoa(int(e.U))+"&v="+itoa(int(e.V)), &dist); code != http.StatusOK {
		t.Fatalf("router dist: code %d", code)
	}
	if want := refIdx.Min(e.U, e.V); dist.Dist != want {
		t.Fatalf("router post-update dist %v, want %v", dist.Dist, want)
	}
}

// TestGracefulShutdown: SIGINT must let an in-flight request finish, refuse
// new connections, and return nil from the serve loop.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	mux := http.NewServeMux()
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, _ *http.Request) {
		once.Do(func() { close(entered) })
		<-release
		w.WriteHeader(http.StatusOK)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	errCh := make(chan error, 1)
	go func() {
		errCh <- serveGracefully(newHTTPServer(mux), ln, 10*time.Second, func() { stopped = true })
	}()

	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = &net.AddrError{Err: resp.Status, Addr: "slow"}
			}
		}
		slowDone <- err
	}()
	<-entered

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// Give Shutdown a moment to close the listener, then let the in-flight
	// request complete; it must have been drained, not cut off.
	time.Sleep(100 * time.Millisecond)
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request was not drained: %v", err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("serve loop returned %v, want nil on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop did not exit after SIGINT")
	}
	if !stopped {
		t.Fatal("onStopped hook did not run")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/slow"); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}
