package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// The serving benchmarks measure the HTTP tier end to end on a loopback
// fixture (n=1024, K=8, 256-pair batches): one server answering /batch
// directly, and a 3-worker fleet behind the router answering the same batch
// via pertree fan-out + merge. The delta between the two is the sharding
// overhead a multi-machine deployment pays per batch.
var fleetFix struct {
	once sync.Once
	ens  *frt.Ensemble
	meta frt.SnapshotMeta
	body string
	err  error
}

func fleetFixture(b *testing.B) (*frt.Ensemble, frt.SnapshotMeta, string) {
	b.Helper()
	fleetFix.once.Do(func() {
		rng := par.NewRNG(3)
		g := graph.RandomConnected(1024, 4096, 8, rng)
		fleetFix.ens, fleetFix.err = frt.SampleEnsemble(8, func() (*frt.Embedding, error) {
			return frt.SampleOnGraph(g, rng, nil)
		})
		if fleetFix.err != nil {
			return
		}
		fleetFix.meta = frt.SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}
		req := batchRequest{Pairs: make([][2]int64, 256)}
		prng := par.NewRNG(4)
		for i := range req.Pairs {
			req.Pairs[i] = [2]int64{int64(prng.Intn(g.N())), int64(prng.Intn(g.N()))}
		}
		body, err := json.Marshal(req)
		if err != nil {
			fleetFix.err = err
			return
		}
		fleetFix.body = string(body)
	})
	if fleetFix.err != nil {
		b.Fatal(fleetFix.err)
	}
	return fleetFix.ens, fleetFix.meta, fleetFix.body
}

func benchPost(b *testing.B, hc *http.Client, url, body string) {
	b.Helper()
	resp, err := hc.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var br batchResponse
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(br.Dists) != 256 {
		b.Fatalf("batch: status %d, %d dists", resp.StatusCode, len(br.Dists))
	}
}

// BenchmarkServerBatch1024 is one server, one 256-pair /batch per op,
// loopback HTTP included.
func BenchmarkServerBatch1024(b *testing.B) {
	ens, meta, body := fleetFixture(b)
	s, err := newServer(nil, ens, meta, nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()
	hc := &http.Client{Timeout: time.Minute}
	defer hc.CloseIdleConnections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, hc, ts.URL+"/batch", body)
	}
}

// BenchmarkFleetBatch1024 is the same batch through a router sharding K=8
// across 3 workers (shards 3/3/2): per op, three pertree subrequests fan
// out, three partial blocks come back, and the router merges them.
func BenchmarkFleetBatch1024(b *testing.B) {
	ens, meta, body := fleetFixture(b)
	var urls []string
	for i := 0; i < 3; i++ {
		ws, err := newServer(nil, ens, meta, nil)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(ws.mux())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	rt, err := newRouter(urls, 16, 10*time.Second, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.mux())
	defer rts.Close()
	hc := &http.Client{Timeout: time.Minute}
	defer hc.CloseIdleConnections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, hc, rts.URL+"/batch", body)
	}
}
