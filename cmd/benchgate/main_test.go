package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	lines := []string{
		"BenchmarkIterate4096         \t      38\t  33650869 ns/op\t 4857426 B/op\t    4099 allocs/op",
		"BenchmarkDijkstra4096-8      \t    1081\t   1144411 ns/op\t  147536 B/op\t       7 allocs/op",
		"ok  \tparmbf/internal/mbf\t6.376s",
		"BenchmarkSub/trees=4-16      \t      10\t 158000000 ns/op",
	}
	got := parseBenchLines(lines)
	want := map[string]result{
		"BenchmarkIterate4096":  {Ns: 33650869, Bytes: 4857426},
		"BenchmarkDijkstra4096": {Ns: 1144411, Bytes: 147536},
		"BenchmarkSub/trees=4":  {Ns: 158000000, Bytes: -1}, // no -benchmem column
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, r := range want {
		if got[name] != r {
			t.Errorf("%s = %+v, want %+v", name, got[name], r)
		}
	}
}

func TestGate(t *testing.T) {
	base := map[string]result{
		"BenchmarkIterate4096":  {Ns: 100, Bytes: -1},
		"BenchmarkDijkstra4096": {Ns: 200, Bytes: -1},
		"BenchmarkRemoved":      {Ns: 50, Bytes: -1},
		"BenchmarkUnrelated":    {Ns: 10, Bytes: -1},
	}
	cur := map[string]result{
		"BenchmarkIterate4096":  {Ns: 115, Bytes: -1}, // +15%: within the 20% budget
		"BenchmarkDijkstra4096": {Ns: 260, Bytes: -1}, // +30%: regressed
		"BenchmarkNew":          {Ns: 42, Bytes: -1},
		"BenchmarkUnrelated":    {Ns: 1000, Bytes: -1}, // regressed but not matched
	}
	match := regexp.MustCompile(`Iterate|Dijkstra|Removed|New`)
	report, failed := gate(base, cur, match, 1.20, 0)
	if len(failed) != 1 || failed[0] != "BenchmarkDijkstra4096" {
		t.Fatalf("failed = %v, want only BenchmarkDijkstra4096", failed)
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"REGRESSED", "removed", "new", "BenchmarkIterate4096"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "Unrelated") {
		t.Errorf("report includes unmatched benchmark:\n%s", joined)
	}
}

func TestGateBytes(t *testing.T) {
	base := map[string]result{
		"BenchmarkA": {Ns: 100, Bytes: 1000},
		"BenchmarkB": {Ns: 100, Bytes: 1000},
		"BenchmarkC": {Ns: 100, Bytes: -1}, // baseline run without -benchmem
	}
	cur := map[string]result{
		"BenchmarkA": {Ns: 105, Bytes: 1500}, // ns fine, B/op +50%: regressed
		"BenchmarkB": {Ns: 105, Bytes: 1050}, // both within budget
		"BenchmarkC": {Ns: 105, Bytes: 9999}, // no baseline bytes: ns-only gating
	}
	match := regexp.MustCompile(`.`)
	report, failed := gate(base, cur, match, 1.20, 1.10)
	if len(failed) != 1 || failed[0] != "BenchmarkA" {
		t.Fatalf("failed = %v, want only BenchmarkA", failed)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "REGRESSED[B/op]") {
		t.Errorf("report missing B/op regression marker:\n%s", joined)
	}
	// With -maxbytes off the same inputs must pass.
	if _, failed := gate(base, cur, match, 1.20, 0); len(failed) != 0 {
		t.Fatalf("maxbytes=0 still failed: %v", failed)
	}
	// A benchmark can regress on both axes but must be reported once.
	cur["BenchmarkA"] = result{Ns: 500, Bytes: 9000}
	_, failed = gate(base, cur, match, 1.20, 1.10)
	n := 0
	for _, f := range failed {
		if f == "BenchmarkA" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("BenchmarkA reported %d times in %v, want once", n, failed)
	}
}

func TestSelectEntries(t *testing.T) {
	recs := []record{
		{Commit: "core1", Bench: []string{"BenchmarkIterate \t 10\t 100 ns/op"}},
		{Commit: "scale1", Bench: []string{"BenchmarkScaleFreeze/n=65536 \t 1\t 900 ns/op"}},
		{Commit: "core2", Bench: []string{"BenchmarkIterate \t 10\t 105 ns/op"}},
		{Commit: "scale2", Bench: []string{"BenchmarkScaleFreeze/n=65536 \t 1\t 910 ns/op"}},
		{Commit: "junk", Bench: []string{"ok \tparmbf\t1.0s"}},
	}
	base, cur, ok := selectEntries(recs, regexp.MustCompile(`ScaleFreeze`))
	if !ok || base.Commit != "scale1" || cur.Commit != "scale2" {
		t.Fatalf("scale selection = %s/%s ok=%v, want scale1/scale2", base.Commit, cur.Commit, ok)
	}
	base, cur, ok = selectEntries(recs, regexp.MustCompile(`Iterate`))
	if !ok || base.Commit != "core1" || cur.Commit != "core2" {
		t.Fatalf("core selection = %s/%s ok=%v, want core1/core2", base.Commit, cur.Commit, ok)
	}
	if _, _, ok := selectEntries(recs, regexp.MustCompile(`NoSuch`)); ok {
		t.Fatal("selection with no matching entries must report !ok")
	}
	if _, _, ok := selectEntries(recs[:2], regexp.MustCompile(`ScaleFreeze`)); ok {
		t.Fatal("a single matching entry is not enough for a comparison")
	}
}

func TestReadRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	content := `{"date":"2026-07-29T00:00:00Z","commit":"abc","bench":["BenchmarkX \t 10\t 100 ns/op"]}
{"date":"2026-07-30T00:00:00Z","commit":"def","bench":["BenchmarkX \t 10\t 90 ns/op"]}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Commit != "abc" || recs[1].Commit != "def" {
		t.Fatalf("records = %+v", recs)
	}
	if len(recs[1].Bench) != 1 {
		t.Fatalf("bench lines = %v", recs[1].Bench)
	}
}
