package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	lines := []string{
		"BenchmarkIterate4096         \t      38\t  33650869 ns/op\t 4857426 B/op\t    4099 allocs/op",
		"BenchmarkDijkstra4096-8      \t    1081\t   1144411 ns/op\t  147536 B/op\t       7 allocs/op",
		"ok  \tparmbf/internal/mbf\t6.376s",
		"BenchmarkSub/trees=4-16      \t      10\t 158000000 ns/op",
	}
	got := parseBenchLines(lines)
	want := map[string]float64{
		"BenchmarkIterate4096":  33650869,
		"BenchmarkDijkstra4096": 1144411,
		"BenchmarkSub/trees=4":  158000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestGate(t *testing.T) {
	base := map[string]float64{
		"BenchmarkIterate4096":  100,
		"BenchmarkDijkstra4096": 200,
		"BenchmarkRemoved":      50,
		"BenchmarkUnrelated":    10,
	}
	cur := map[string]float64{
		"BenchmarkIterate4096":  115, // +15%: within the 20% budget
		"BenchmarkDijkstra4096": 260, // +30%: regressed
		"BenchmarkNew":          42,
		"BenchmarkUnrelated":    1000, // regressed but not matched
	}
	match := regexp.MustCompile(`Iterate|Dijkstra|Removed|New`)
	report, failed := gate(base, cur, match, 1.20)
	if len(failed) != 1 || failed[0] != "BenchmarkDijkstra4096" {
		t.Fatalf("failed = %v, want only BenchmarkDijkstra4096", failed)
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"REGRESSED", "removed", "new", "BenchmarkIterate4096"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "Unrelated") {
		t.Errorf("report includes unmatched benchmark:\n%s", joined)
	}
}

func TestReadRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	content := `{"date":"2026-07-29T00:00:00Z","commit":"abc","bench":["BenchmarkX \t 10\t 100 ns/op"]}
{"date":"2026-07-30T00:00:00Z","commit":"def","bench":["BenchmarkX \t 10\t 90 ns/op"]}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Commit != "abc" || recs[1].Commit != "def" {
		t.Fatalf("records = %+v", recs)
	}
	if len(recs[1].Bench) != 1 {
		t.Fatalf("bench lines = %v", recs[1].Bench)
	}
}
