// Command benchgate is the benchmark-regression gate of the bench CI
// pipeline: it reads a BENCH_*.json trajectory (one JSON object per line,
// as appended by `make bench-graph` / `make bench-mbf`, each with a `bench`
// array of raw `go test -bench` lines), compares the newest entry against
// the previous one, and exits non-zero when any selected benchmark's ns/op
// regressed beyond the allowed ratio.
//
// Usage:
//
//	benchgate -file BENCH_mbf.json -match 'Iterate' -max 1.20
//
// In CI the checked-out file holds the committed baseline; the bench job
// appends one fresh line before gating, so "last vs previous" is "this run
// vs committed baseline". benchstat renders the human-readable comparison in
// the job log; benchgate is the machine-checkable pass/fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type record struct {
	Date   string   `json:"date"`
	Commit string   `json:"commit"`
	Bench  []string `json:"bench"`
}

// parseBenchLines extracts name → ns/op from raw `go test -bench` output
// lines. The trailing -N GOMAXPROCS suffix is stripped so runs from machines
// with different core counts stay comparable.
func parseBenchLines(lines []string) map[string]float64 {
	out := make(map[string]float64)
	re := regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)
	for _, l := range lines {
		m := re.FindStringSubmatch(l)
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[name] = ns
	}
	return out
}

// gate compares ns/op of the matched benchmarks and returns one line per
// comparison plus the names that regressed beyond maxRatio. Benchmarks
// present in only one run are reported but never fail the gate (they are
// new or removed, not regressed).
func gate(baseline, current map[string]float64, match *regexp.Regexp, maxRatio float64) (report []string, failed []string) {
	for name, old := range baseline {
		if !match.MatchString(name) {
			continue
		}
		now, ok := current[name]
		if !ok {
			report = append(report, fmt.Sprintf("%-40s removed (baseline %.0f ns/op)", name, old))
			continue
		}
		ratio := now / old
		status := "ok"
		if ratio > maxRatio {
			status = "REGRESSED"
			failed = append(failed, name)
		}
		report = append(report, fmt.Sprintf("%-40s %12.0f → %12.0f ns/op  (%.2fx)  %s", name, old, now, ratio, status))
	}
	for name := range current {
		if match.MatchString(name) {
			if _, ok := baseline[name]; !ok {
				report = append(report, fmt.Sprintf("%-40s new (%.0f ns/op)", name, current[name]))
			}
		}
	}
	return report, failed
}

func readRecords(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s: bad JSON line: %w", path, err)
		}
		recs = append(recs, r)
	}
	return recs, sc.Err()
}

func main() {
	file := flag.String("file", "", "BENCH_*.json trajectory (JSON lines)")
	matchExpr := flag.String("match", ".", "regexp selecting the gated benchmarks")
	maxRatio := flag.Float64("max", 1.20, "maximum allowed new/old ns-per-op ratio")
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -file is required")
		os.Exit(2)
	}
	match, err := regexp.Compile(*matchExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -match: %v\n", err)
		os.Exit(2)
	}
	recs, err := readRecords(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(recs) < 2 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has %d entries; need a baseline and a fresh run (run `make bench-*` first)\n", *file, len(recs))
		os.Exit(2)
	}
	base, cur := recs[len(recs)-2], recs[len(recs)-1]
	fmt.Printf("benchgate %s: baseline %s (%s) vs current %s (%s), max ratio %.2f\n",
		*file, base.Commit, base.Date, cur.Commit, cur.Date, *maxRatio)
	report, failed := gate(parseBenchLines(base.Bench), parseBenchLines(cur.Bench), match, *maxRatio)
	if len(report) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark matched %q in %s\n", *matchExpr, *file)
		os.Exit(2)
	}
	for _, l := range report {
		fmt.Println(l)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: ns/op regression beyond %.2fx in: %s\n", *maxRatio, strings.Join(failed, ", "))
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
