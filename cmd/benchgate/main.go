// Command benchgate is the benchmark-regression gate of the bench CI
// pipeline: it reads a BENCH_*.json trajectory (one JSON object per line,
// as appended by `make bench-graph` / `make bench-mbf` / `make bench-scale`,
// each with a `bench` array of raw `go test -bench` lines), compares the
// newest entry containing the selected benchmarks against the previous such
// entry, and exits non-zero when any selected benchmark's ns/op — or, with
// -maxbytes, B/op — regressed beyond the allowed ratio. Entry selection
// skips entries from other suites: core and scale runs append to the same
// trajectory files, so the two newest lines need not both carry the gated
// names.
//
// Usage:
//
//	benchgate -file BENCH_mbf.json -match 'Iterate' -max 1.20
//	benchgate -file BENCH_graph.json -match 'ScaleFreeze' -max 1.25 -maxbytes 1.10
//
// In CI the checked-out file holds the committed baseline; the bench job
// appends one fresh line before gating, so "last vs previous" is "this run
// vs committed baseline". benchstat renders the human-readable comparison in
// the job log; benchgate is the machine-checkable pass/fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type record struct {
	Date   string   `json:"date"`
	Commit string   `json:"commit"`
	Bench  []string `json:"bench"`
}

// result is one benchmark's measurements. Bytes is -1 when the line carried
// no B/op column (benchmark run without -benchmem).
type result struct {
	Ns    float64
	Bytes float64
}

// parseBenchLines extracts name → {ns/op, B/op} from raw `go test -bench`
// output lines. The trailing -N GOMAXPROCS suffix is stripped so runs from
// machines with different core counts stay comparable.
func parseBenchLines(lines []string) map[string]result {
	out := make(map[string]result)
	re := regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?`)
	for _, l := range lines {
		m := re.FindStringSubmatch(l)
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{Ns: ns, Bytes: -1}
		if m[3] != "" {
			if bts, err := strconv.ParseFloat(m[3], 64); err == nil {
				r.Bytes = bts
			}
		}
		out[name] = r
	}
	return out
}

// gate compares ns/op — and, when maxBytes > 0, B/op — of the matched
// benchmarks and returns one line per comparison plus the names that
// regressed beyond the allowed ratios. Benchmarks present in only one run
// are reported but never fail the gate (they are new or removed, not
// regressed); likewise a benchmark missing a B/op column on either side is
// gated on ns/op only.
func gate(baseline, current map[string]result, match *regexp.Regexp, maxRatio, maxBytes float64) (report []string, failed []string) {
	for name, old := range baseline {
		if !match.MatchString(name) {
			continue
		}
		now, ok := current[name]
		if !ok {
			report = append(report, fmt.Sprintf("%-40s removed (baseline %.0f ns/op)", name, old.Ns))
			continue
		}
		ratio := now.Ns / old.Ns
		status := "ok"
		if ratio > maxRatio {
			status = "REGRESSED"
			failed = append(failed, name)
		}
		line := fmt.Sprintf("%-40s %12.0f → %12.0f ns/op  (%.2fx)", name, old.Ns, now.Ns, ratio)
		if maxBytes > 0 && old.Bytes > 0 && now.Bytes >= 0 {
			bratio := now.Bytes / old.Bytes
			line += fmt.Sprintf("  %12.0f → %12.0f B/op  (%.2fx)", old.Bytes, now.Bytes, bratio)
			if bratio > maxBytes {
				if status == "ok" {
					failed = append(failed, name)
				}
				status = "REGRESSED[B/op]"
			}
		}
		report = append(report, line+"  "+status)
	}
	for name := range current {
		if match.MatchString(name) {
			if _, ok := baseline[name]; !ok {
				report = append(report, fmt.Sprintf("%-40s new (%.0f ns/op)", name, current[name].Ns))
			}
		}
	}
	return report, failed
}

// selectEntries picks the two most recent records whose bench lines include
// at least one benchmark matching the selector. BENCH_*.json trajectories
// interleave entries from different suites (the core tier and the scale
// tier append to the same files), so "last two lines" would compare a scale
// entry against a core entry and report everything as removed/new.
func selectEntries(recs []record, match *regexp.Regexp) (base, cur record, ok bool) {
	var hits []record
	for _, r := range recs {
		parsed := parseBenchLines(r.Bench)
		for name := range parsed {
			if match.MatchString(name) {
				hits = append(hits, r)
				break
			}
		}
	}
	if len(hits) < 2 {
		return record{}, record{}, false
	}
	return hits[len(hits)-2], hits[len(hits)-1], true
}

func readRecords(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s: bad JSON line: %w", path, err)
		}
		recs = append(recs, r)
	}
	return recs, sc.Err()
}

func main() {
	file := flag.String("file", "", "BENCH_*.json trajectory (JSON lines)")
	matchExpr := flag.String("match", ".", "regexp selecting the gated benchmarks")
	maxRatio := flag.Float64("max", 1.20, "maximum allowed new/old ns-per-op ratio")
	maxBytes := flag.Float64("maxbytes", 0, "maximum allowed new/old B-per-op ratio (0 disables allocation gating)")
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -file is required")
		os.Exit(2)
	}
	match, err := regexp.Compile(*matchExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -match: %v\n", err)
		os.Exit(2)
	}
	recs, err := readRecords(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	base, cur, ok := selectEntries(recs, match)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchgate: %s has fewer than 2 entries matching %q; need a baseline and a fresh run (run `make bench-*` first)\n", *file, *matchExpr)
		os.Exit(2)
	}
	fmt.Printf("benchgate %s: baseline %s (%s) vs current %s (%s), max ratio %.2f\n",
		*file, base.Commit, base.Date, cur.Commit, cur.Date, *maxRatio)
	report, failed := gate(parseBenchLines(base.Bench), parseBenchLines(cur.Bench), match, *maxRatio, *maxBytes)
	if len(report) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark matched %q in %s\n", *matchExpr, *file)
		os.Exit(2)
	}
	for _, l := range report {
		fmt.Println(l)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: regression beyond allowed ratio in: %s\n", strings.Join(failed, ", "))
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
