package parmbf

import (
	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/semiring"
)

// This file re-exports the MBF-like algorithm zoo of §3 of the paper
// through the façade: each function is an instance of the algebraic
// framework (a semimodule over a semiring, a representative projection, and
// initial values) run by the generic engine in internal/mbf.

// Path is a directed loop-free path (all-paths semiring, §3.3).
type Path = semiring.Path

// PathSet assigns weights to paths (the all-paths semiring element type).
type PathSet = semiring.PathSet

// HopDistances returns the h-hop distances dist^h(source, ·, G) — the
// classic Moore-Bellman-Ford algorithm as an MBF-like instance
// (Example 3.3). Use h = g.N()−1 for exact distances.
func HopDistances(g *Graph, source Node, h int) []float64 {
	return mbf.SSSP(g, source, h, nil)
}

// KClosest returns, for every node, the k closest nodes with their exact
// distances — the k-SSP problem (Example 3.4), whose top-k filter is the
// paper's flagship illustration of work reduction by filtering.
func KClosest(g *Graph, k int) []DistMap {
	return mbf.KSSP(g, k, g.N(), nil)
}

// NearestSources returns, for every node, its distance to the nearest of
// the given sources within maxDist, or +Inf — the anonymous "forest fire"
// detection of Example 3.7.
func NearestSources(g *Graph, sources []Node, maxDist float64) []float64 {
	return mbf.ForestFire(g, sources, maxDist, nil)
}

// WidestPaths returns the widest-path (bottleneck) distances from source —
// the max-min semiring instance of §3.2 (Example 3.13), e.g. transitive
// trust in a trust network.
func WidestPaths(g *Graph, source Node) []float64 {
	return mbf.SSWP(g, source, g.N(), nil)
}

// KShortestPaths returns, for every node v, the k lightest simple
// v-to-target paths with their weights — the k-Shortest Distance Problem
// (k-SDP, Definition 3.21) over the all-paths semiring of §3.3. With
// distinct set, weights must be pairwise distinct (k-DSDP).
func KShortestPaths(g *Graph, target Node, k int, distinct bool) []PathSet {
	return mbf.KShortestDistances(g, target, k, g.N(), distinct, nil)
}

// Reachable returns, for every node, the sorted set of nodes reachable
// within h hops — the Boolean-semiring connectivity of §3.4 (Example
// 3.25). Unlike the distance computations this tolerates disconnected
// graphs.
func Reachable(g *Graph, h int) [][]Node {
	return mbf.Connectivity(g, h, nil)
}

// SourceDetection solves (S, h, d, k)-source detection (Example 3.2):
// every node learns the k closest sources within h hops and distance d.
func SourceDetection(g *Graph, sources []Node, h int, maxDist float64, k int) []DistMap {
	set := make([]bool, g.N())
	for _, s := range sources {
		set[s] = true
	}
	return mbf.SourceDetection(g, func(v graph.Node) bool { return set[v] }, h, maxDist, k, nil)
}
